"""Chaos campaign tests: scenario matrix, scoring and the ccf chaos CLI.

Platform faults are kept dormant here unless a test arms them
explicitly (``fault_dir`` + ``jobs >= 2``): the point of most of these
tests is the declarative scenario layer and the scorecard, not the
fault machinery itself (exercised in test_resilient_engine.py).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.chaoscampaign import (
    SCENARIOS,
    CampaignOutcome,
    campaign_sweep,
    run_campaign,
)
from repro.experiments.engine import CellCache, cell_key


class TestScenarioMatrix:
    def test_scenario_names_are_stable(self):
        assert list(SCENARIOS) == [
            "baseline",
            "fabric-chaos",
            "noisy-estimates",
            "worker-crash",
            "cache-corruption",
            "cell-timeout",
            "kitchen-sink",
        ]

    def test_baseline_declares_no_faults(self):
        s = SCENARIOS["baseline"]
        assert s.chaos_mtbf is None
        assert s.noise == 0.0
        assert not (s.kill_worker or s.corrupt_cache or s.inject_timeout)

    def test_kitchen_sink_declares_every_fault(self):
        s = SCENARIOS["kitchen-sink"]
        assert s.chaos_mtbf is not None
        assert s.noise > 0
        assert s.kill_worker and s.corrupt_cache and s.inject_timeout

    def test_every_scenario_has_a_description(self):
        assert all(s.description for s in SCENARIOS.values())


class TestCampaignSweep:
    def test_one_cell_per_scenario(self):
        spec = campaign_sweep(quick=True)
        assert spec.name == "chaos"
        assert len(spec.cells) == len(SCENARIOS)
        assert [c.params["scenario"] for c in spec.cells] == list(SCENARIOS)

    def test_quick_keeps_the_full_scenario_set(self):
        # quick shrinks the workload, never the fault coverage
        quick = campaign_sweep(quick=True)
        full = campaign_sweep(quick=False)
        assert len(quick.cells) == len(full.cells)

    def test_scenario_subset_preserves_request_order(self):
        spec = campaign_sweep(quick=True, scenarios=("kitchen-sink", "baseline"))
        assert [c.params["scenario"] for c in spec.cells] == [
            "kitchen-sink",
            "baseline",
        ]

    def test_unknown_scenario_is_a_value_error(self):
        with pytest.raises(ValueError, match="unknown chaos scenarios"):
            campaign_sweep(quick=True, scenarios=("baseline", "nope"))

    def test_simulated_faults_are_cell_params_platform_faults_are_not(self):
        # simulated-world faults change results, so they must be part of
        # the cache identity; platform faults must not be.
        spec = campaign_sweep(quick=True)
        by_name = {c.params["scenario"]: c.params for c in spec.cells}
        assert by_name["fabric-chaos"]["chaos_mtbf"] is not None
        assert by_name["noisy-estimates"]["noise"] > 0
        for params in by_name.values():
            assert "kill_worker" not in params
            assert "corrupt_cache" not in params
            assert "inject_timeout" not in params


class TestRunCampaign:
    def test_dormant_campaign_completes_with_clean_baseline(self):
        out = run_campaign(quick=True, jobs=1)
        assert isinstance(out, CampaignOutcome)
        assert out.completed
        baseline = out.table.rows[0]
        assert baseline[0] == "baseline"
        assert baseline[5] == pytest.approx(1.0)

    def test_scorecard_reports_completion_and_counters(self):
        out = run_campaign(quick=True, jobs=1, scenarios=("baseline",))
        metrics = dict(out.resilience.rows)
        assert metrics["scenarios"] == 1
        assert metrics["completed under faults"] == "yes"
        assert metrics["coflows completed"].count("/") == 1

    def test_completed_is_false_when_coflows_are_lost(self):
        out = run_campaign(quick=True, jobs=1, scenarios=("baseline",))
        out.table.rows[0][1] = 0  # pretend every coflow was lost
        assert not out.completed

    def test_corruption_scenarios_quarantine_their_cache_entry(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        out = run_campaign(
            quick=True,
            jobs=1,
            cache=cache,
            scenarios=("cache-corruption",),
        )
        assert out.completed
        assert out.outcome.quarantined == 1
        assert any(
            (tmp_path / "cache" / "quarantine").iterdir()
        ), "the corrupted entry should have been preserved for forensics"

    def test_campaign_rows_are_cacheable_and_reproducible(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        scenarios = ("baseline", "noisy-estimates")
        first = run_campaign(quick=True, jobs=1, cache=cache, scenarios=scenarios)
        second = run_campaign(quick=True, jobs=1, cache=cache, scenarios=scenarios)
        assert second.outcome.hits == len(scenarios)
        assert second.table.rows == first.table.rows

    def test_cached_entries_carry_integrity_checksums(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        run_campaign(quick=True, jobs=1, cache=cache, scenarios=("baseline",))
        spec = campaign_sweep(quick=True, scenarios=("baseline",))
        doc = json.loads(cache.path(cell_key(spec, spec.cells[0])).read_text())
        assert len(doc["sha256"]) == 64


class TestChaosCLI:
    def test_list_prints_every_scenario(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_quick_dormant_run_exits_zero(self, capsys):
        code = main(
            ["chaos", "--quick", "--no-cache", "--no-faults",
             "--jobs", "1", "--scenario", "baseline"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "resilience scorecard" in captured.out
        assert "completed under faults" in captured.out

    def test_armed_run_with_corruption_and_kill(self, tmp_path, capsys):
        # the CI smoke scenario: platform faults armed, cache corrupted,
        # a worker killed -- and the campaign still exits 0.
        code = main(
            ["chaos", "--quick", "--jobs", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--scenario", "worker-crash", "--scenario", "cache-corruption",
             "--report", str(tmp_path / "report.md")]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert (tmp_path / "report.md").read_text().startswith("# Chaos campaign")
        assert "report written" in captured.err

    def test_trace_records_platform_events(self, tmp_path, capsys):
        trace = tmp_path / "chaos.jsonl"
        code = main(
            ["chaos", "--quick", "--jobs", "2",
             "--cache-dir", str(tmp_path / "cache"),
             "--scenario", "cell-timeout",
             "--trace", str(trace)]
        )
        capsys.readouterr()
        assert code == 0
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {e.get("kind") for e in events}
        assert "platform_event" in kinds

    def test_unknown_scenario_is_cli_misuse(self, capsys):
        assert main(["chaos", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_zero_jobs_is_cli_misuse(self, capsys):
        assert main(["chaos", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_csv_output(self, capsys):
        code = main(
            ["chaos", "--quick", "--no-cache", "--no-faults",
             "--jobs", "1", "--scenario", "baseline", "--csv"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines()[0].startswith("scenario,")
