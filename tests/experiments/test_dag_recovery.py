"""Tests for the dag-recovery experiment (stage policies x noise)."""

import math

from repro.experiments.dagrecovery import run_dag_recovery
from repro.experiments.registry import EXPERIMENTS

QUICK = dict(
    n_nodes=8,
    scale_factor=0.2,
    schedulers=("sebf",),
    noise_levels=(0.0, 0.5),
)


def rows_by_key(table):
    return {
        (r[0], r[1], r[2]): dict(zip(table.columns, r)) for r in table.rows
    }


class TestDagRecoveryExperiment:
    def test_registered(self):
        assert "dag-recovery" in EXPERIMENTS

    def test_same_seed_same_table(self):
        # The satellite determinism guarantee: equal seeds reproduce the
        # rendered table byte-for-byte, including the noisy cells.
        a = run_dag_recovery(seed=3, **QUICK)
        b = run_dag_recovery(seed=3, **QUICK)
        assert a.render() == b.render()
        # repr-compare rows: nan != nan would fail list equality even
        # though the values are identical.
        assert repr(a.rows) == repr(b.rows)

    def test_policies_ranked_as_designed(self):
        table = run_dag_recovery(seed=0, **QUICK)
        rows = rows_by_key(table)
        failjob = rows[("sebf", "fail-job", 0.0)]
        retry = rows[("sebf", "retry-stage", 0.0)]
        replan = rows[("sebf", "replan-stage", 0.0)]
        # fail-job loses the job outright.
        assert failjob["job_ok"] == 0
        assert math.isnan(failjob["makespan"])
        # retry and replan both finish, but replanning routes around the
        # outage instead of waiting it out.
        assert retry["job_ok"] == 1 and replan["job_ok"] == 1
        assert retry["retries"] >= 1 and replan["replans"] >= 1
        assert replan["makespan"] < retry["makespan"]
        assert replan["inflation_x"] < retry["inflation_x"]

    def test_bytes_lost_reported(self):
        table = run_dag_recovery(seed=0, **QUICK)
        rows = rows_by_key(table)
        # The aborted attempt's stranded bytes are logged, not dropped.
        assert rows[("sebf", "replan-stage", 0.0)]["bytes_lost"] > 0
