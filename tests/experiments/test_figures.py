"""Shape tests for Figures 5/6/7 at reduced scale.

The paper's absolute byte/second values depend on its testbed constants;
what must reproduce is the *shape*: who wins, by roughly what factor, and
the monotonicities called out in the text.  These tests pin the shapes at
a reduced scale factor (the analytic workload's metrics scale linearly
with SF, so shapes are invariant).
"""

import numpy as np
import pytest

from repro.experiments.figures import (
    SweepConfig,
    run_fig5_nodes,
    run_fig6_zipf,
    run_fig7_skew,
)

CFG = SweepConfig(scale_factor=30.0, n_nodes=60)


@pytest.fixture(scope="module")
def fig5():
    return run_fig5_nodes(CFG, nodes=(20, 40, 80))


@pytest.fixture(scope="module")
def fig6():
    return run_fig6_zipf(CFG, zipfs=(0.0, 0.4, 0.8))


@pytest.fixture(scope="module")
def fig7():
    return run_fig7_skew(CFG, skews=(0.0, 0.2, 0.4))


class TestFig5Shapes:
    def test_ccf_always_fastest(self, fig5):
        ccf = fig5.column("ccf_cct_s")
        for other in ("hash", "mini"):
            col = fig5.column(f"{other}_cct_s")
            assert all(c <= o + 1e-9 for c, o in zip(ccf, col))

    def test_mini_always_slowest(self, fig5):
        mini = fig5.column("mini_cct_s")
        hash_ = fig5.column("hash_cct_s")
        assert all(m > h for m, h in zip(mini, hash_))

    def test_traffic_ordering_mini_ccf_hash(self, fig5):
        mini = fig5.column("mini_traffic_gb")
        ccf = fig5.column("ccf_traffic_gb")
        hash_ = fig5.column("hash_traffic_gb")
        assert all(m <= c <= h for m, c, h in zip(mini, ccf, hash_))

    def test_speedup_over_mini_grows_with_nodes(self, fig5):
        mini = fig5.column("mini_cct_s")
        ccf = fig5.column("ccf_cct_s")
        speedups = [m / c for m, c in zip(mini, ccf)]
        assert speedups == sorted(speedups)
        assert speedups[0] > 3  # substantial even at the smallest scale


class TestFig6Shapes:
    def test_hash_roughly_constant(self, fig6):
        hash_ = fig6.column("hash_cct_s")
        assert max(hash_) / min(hash_) < 1.6

    def test_ccf_grows_with_zipf(self, fig6):
        ccf = fig6.column("ccf_cct_s")
        assert ccf == sorted(ccf)

    def test_traffic_decreases_with_zipf(self, fig6):
        for s in ("hash", "mini", "ccf"):
            col = fig6.column(f"{s}_traffic_gb")
            assert col == sorted(col, reverse=True)

    def test_mini_traffic_falls_fastest(self, fig6):
        mini = fig6.column("mini_traffic_gb")
        hash_ = fig6.column("hash_traffic_gb")
        assert (mini[0] - mini[-1]) > (hash_[0] - hash_[-1])

    def test_largest_speedup_at_uniform(self, fig6):
        hash_ = fig6.column("hash_cct_s")
        ccf = fig6.column("ccf_cct_s")
        speedups = [h / c for h, c in zip(hash_, ccf)]
        assert speedups[0] == max(speedups)


class TestFig7Shapes:
    def test_hash_grows_sharply_with_skew(self, fig7):
        hash_ = fig7.column("hash_cct_s")
        assert hash_ == sorted(hash_)
        assert hash_[-1] > 2 * hash_[0]

    def test_mini_and_ccf_decrease_with_skew(self, fig7):
        for s in ("mini", "ccf"):
            col = fig7.column(f"{s}_cct_s")
            assert col == sorted(col, reverse=True)

    def test_speedup_over_mini_roughly_constant(self, fig7):
        # Paper: "a speedup of 12.8x over Mini" across the whole sweep.
        mini = fig7.column("mini_cct_s")
        ccf = fig7.column("ccf_cct_s")
        speedups = [m / c for m, c in zip(mini, ccf)]
        assert max(speedups) / min(speedups) < 1.15

    def test_ccf_still_wins_without_skew(self, fig7):
        # Paper: "even when the skewness is 0 ... CCF is still faster".
        assert fig7.column("ccf_cct_s")[0] < fig7.column("hash_cct_s")[0]

    def test_traffic_of_mini_ccf_falls_linearly(self, fig7):
        mini = fig7.column("mini_traffic_gb")
        drops = np.diff(mini)
        assert np.allclose(drops, drops[0], rtol=0.15)
