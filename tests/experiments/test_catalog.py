"""Drift test: docs/experiments.md must mirror the experiment registry."""

import re
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, SWEEPS

CATALOG = Path(__file__).resolve().parents[2] / "docs" / "experiments.md"

#: A catalog row: ``| `name` | ... | yes/no | ... |`` — first cell is the
#: backticked experiment name, fourth is the sweep-capability marker.
ROW_RE = re.compile(r"^\|\s*`([a-z0-9-]+)`\s*\|")


def _catalog_rows() -> dict[str, str]:
    rows: dict[str, str] = {}
    for line in CATALOG.read_text().splitlines():
        m = ROW_RE.match(line)
        if m:
            rows[m.group(1)] = line
    return rows


def test_catalog_exists():
    assert CATALOG.is_file(), "docs/experiments.md is missing"


def test_catalog_lists_exactly_the_registry():
    assert sorted(_catalog_rows()) == sorted(EXPERIMENTS)


def test_catalog_sweep_column_matches_sweeps_registry():
    for name, line in _catalog_rows().items():
        cells = [c.strip() for c in line.strip("|").split("|")]
        marker = cells[3]
        assert marker in ("yes", "no"), f"{name}: bad sweep marker {marker!r}"
        assert (marker == "yes") == (name in SWEEPS), (
            f"{name}: catalog says sweep={marker!r} but registry says "
            f"{'yes' if name in SWEEPS else 'no'}"
        )


def test_sweeps_are_a_subset_of_experiments():
    assert set(SWEEPS) <= set(EXPERIMENTS)
