"""The motivating example must reproduce the paper's published numbers."""

import numpy as np
import pytest

from repro.experiments.motivating import MotivatingExample, run_motivating


@pytest.fixture(scope="module")
def example():
    return MotivatingExample.build()


class TestPaperNumbers:
    def test_hash_traffic_is_8(self, example):
        assert example.traffic(example.sp0_hash) == 8.0

    def test_sp1_traffic_is_7_and_cct_3(self, example):
        assert example.traffic(example.sp1_suboptimal) == 7.0
        assert example.optimal_cct(example.sp1_suboptimal) == 3.0

    def test_sp2_traffic_is_6_and_cct_4(self, example):
        assert example.traffic(example.sp2_traffic_optimal) == 6.0
        assert example.optimal_cct(example.sp2_traffic_optimal) == 4.0

    def test_worst_schedule_of_sp2_is_6(self, example):
        assert example.simulated_cct(
            example.sp2_traffic_optimal, "sequential"
        ) == pytest.approx(6.0)

    def test_optimal_coflow_schedule_of_sp2_is_4(self, example):
        assert example.simulated_cct(
            example.sp2_traffic_optimal, "sebf"
        ) == pytest.approx(4.0)

    def test_ccf_heuristic_finds_cct_3(self, example):
        assert example.optimal_cct(example.ccf_dest) == 3.0

    def test_suboptimal_traffic_beats_optimal_traffic_on_cct(self, example):
        # The paper's core observation: less traffic != less time.
        assert example.traffic(example.sp1_suboptimal) > example.traffic(
            example.sp2_traffic_optimal
        )
        assert example.optimal_cct(example.sp1_suboptimal) < example.optimal_cct(
            example.sp2_traffic_optimal
        )


class TestTable:
    def test_runs_and_contains_all_plans(self):
        table = run_motivating()
        plans = table.column("plan")
        assert len(plans) == 4
        assert any("hash" in p for p in plans)
        rendered = table.render()
        assert "Motivating" in rendered
