"""Tests for the at-a-glance summary."""

import pytest

from repro.experiments.summary import run_summary


@pytest.fixture(scope="module")
def table():
    return run_summary()


class TestSummary:
    def test_all_headlines_present(self, table):
        headlines = " ".join(table.column("headline"))
        for fig in ("Fig.1", "Fig.2", "Fig.5", "Fig.6", "Fig.7"):
            assert fig in headlines

    def test_motivating_rows_exact(self, table):
        rows = {r[0]: r for r in table.rows}
        row = rows["Fig.1 traffic of hash / suboptimal / minimal plans"]
        assert row[1] == row[2]  # byte-for-byte match with the paper

    def test_fig5_band_overlaps_paper(self, table):
        rows = {r[0]: r for r in table.rows}
        build = rows["Fig.5 CCF speedup over Mini (100 -> 1000 nodes)"][2]
        lo, hi = (float(x.rstrip("x")) for x in build.split(" - "))
        # The paper band is 8.1-15.2x; ours must overlap it broadly.
        assert lo < 15.2 and hi > 8.1

    def test_runs_fast_enough_for_a_cli_default(self):
        import time

        start = time.perf_counter()
        run_summary()
        assert time.perf_counter() - start < 10
