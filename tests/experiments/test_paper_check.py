"""The paper-claim verifier must pass on a fresh build."""

import pytest

from repro.experiments.paper_check import run_paper_check


@pytest.fixture(scope="module")
def table():
    # Reduced scale: the claims are shape/ratio statements, invariant to
    # the analytic workload's scale factor.
    return run_paper_check(scale_factor=20.0, n_nodes=40)


class TestPaperCheck:
    def test_every_claim_passes(self, table):
        verdicts = table.column("verdict")
        failing = [
            (s, c)
            for s, c, v in zip(
                table.column("source"), table.column("claim"), verdicts
            )
            if v != "PASS"
        ]
        assert not failing, f"published claims broken: {failing}"

    def test_covers_all_figures(self, table):
        sources = set(table.column("source"))
        assert {"Fig.1", "Fig.2(a)", "Fig.2(b)", "Fig.2(c)"} <= sources
        assert any(s.startswith("Fig.5") for s in sources)
        assert any(s.startswith("Fig.6") for s in sources)
        assert any(s.startswith("Fig.7") for s in sources)

    def test_claim_count(self, table):
        assert len(table.rows) == 15

    def test_cli_verify_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["verify", "--scale-factor", "20", "--nodes", "40"]) == 0
        out = capsys.readouterr().out
        assert "15/15 claims verified" in out
