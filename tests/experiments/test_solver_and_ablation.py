"""Tests for the solver-scaling and ablation experiments (small ladders)."""

import pytest

from repro.experiments.ablation import run_heuristic_ablation, run_scheduler_ablation
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.solver import run_solver_scaling


class TestSolverScaling:
    @pytest.fixture(scope="class")
    def table(self):
        return run_solver_scaling(sizes=((3, 15), (4, 20)), time_limit=60.0)

    def test_gap_is_nonnegative_and_small(self, table):
        for gap in table.column("gap_%"):
            assert -1e-6 <= gap < 50.0

    def test_heuristic_much_faster(self, table):
        exact = table.column("exact_s")
        heur = table.column("heuristic_s")
        assert all(h < e for h, e in zip(heur, exact))

    def test_optimal_t_not_above_heuristic_t(self, table):
        opt = table.column("optimal_T_mb")
        heur = table.column("heuristic_T_mb")
        assert all(o <= h + 1e-9 for o, h in zip(opt, heur))


class TestSchedulerAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_scheduler_ablation(
            n_nodes=8, scale_factor=0.05, n_jobs=3, inter_arrival=1.0
        )

    def test_all_strategies_present(self, table):
        assert table.column("strategy") == ["hash", "mini", "ccf"]

    def test_sequential_is_worst_for_ccf(self, table):
        row = table.rows[table.column("strategy").index("ccf")]
        named = dict(zip(table.columns, row))
        assert named["sequential"] >= named["sebf"]

    def test_sebf_not_worse_than_fair(self, table):
        for row in table.rows:
            named = dict(zip(table.columns, row))
            assert named["sebf"] <= named["fair"] + 1e-9


class TestHeuristicAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_heuristic_ablation(n_nodes=20, partitions=200, seed=3)

    def test_four_configurations(self, table):
        assert len(table.rows) == 4

    def test_full_algorithm_beats_no_locality_variants(self, table):
        # Greedy is not monotone in its knobs, so "full config is globally
        # best" is not a theorem; what the ablation demonstrates (stable on
        # this fixed seed) is that the locality tie-break helps.
        ts = {
            (s, l): t
            for s, l, t in zip(
                table.column("sort_partitions"),
                table.column("locality_tiebreak"),
                table.column("T_gb"),
            )
        }
        assert ts[(True, True)] <= ts[(True, False)] + 1e-9
        assert ts[(True, True)] <= ts[(False, False)] + 1e-9

    def test_locality_tiebreak_reduces_traffic(self, table):
        rows = {
            (s, l): t
            for s, l, t in zip(
                table.column("sort_partitions"),
                table.column("locality_tiebreak"),
                table.column("traffic_gb"),
            )
        }
        assert rows[(True, True)] <= rows[(True, False)] + 1e-9


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "motivating",
            "fig5",
            "fig6",
            "fig7",
            "solver",
            "ablation-sched",
            "ablation-heuristic",
            "trace",
            "online",
            "topology",
            "queries",
            "robustness",
            "recovery",
            "dag-recovery",
            "validation",
            "crossover",
            "psweep",
            "chaos",
            "overload",
            "tournament",
            "summary",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("fig99")
