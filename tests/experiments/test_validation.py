"""Tests for the model-validation experiment and the ccf-ls strategy."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.experiments.validation import run_model_validation
from repro.workloads.analytic import AnalyticJoinWorkload


class TestModelValidation:
    @pytest.fixture(scope="class")
    def table(self):
        return run_model_validation(
            n_nodes=4, scale_factor=0.02, seeds=(0, 1)
        )

    def test_all_strategies_validated(self, table):
        assert table.column("strategy") == ["hash", "mini", "ccf"]

    def test_errors_small(self, table):
        # The analytic model must track tuple-level runs within a few
        # percent at this sample size.
        for col in table.columns[1:]:
            for v in table.column(col):
                assert v < 8.0, f"{col} error {v}% too large"

    def test_mean_not_above_max(self, table):
        for metric in ("traffic", "cct"):
            means = table.column(f"{metric}_err_mean_%")
            maxes = table.column(f"{metric}_err_max_%")
            assert all(m <= x + 1e-12 for m, x in zip(means, maxes))


class TestCcfLsStrategy:
    def test_ls_never_worse_than_plain_ccf(self):
        wl = AnalyticJoinWorkload(n_nodes=12, scale_factor=0.2)
        ccf = CCF()
        plain = ccf.plan(wl, "ccf")
        polished = ccf.plan(wl, "ccf-ls")
        assert polished.bottleneck_bytes <= plain.bottleneck_bytes + 1e-9

    def test_ls_fixes_adversarial_instance(self):
        from repro.core.model import ShuffleModel
        from tests.core.test_localsearch import ADVERSARIAL

        m = ShuffleModel(h=ADVERSARIAL.copy(), rate=1.0)
        ccf = CCF()
        t_plain = ccf.plan(m, "ccf").bottleneck_bytes
        t_ls = ccf.plan(m, "ccf-ls").bottleneck_bytes
        assert t_ls < t_plain

    def test_unknown_strategy_message_mentions_ls(self):
        wl = AnalyticJoinWorkload(n_nodes=3, scale_factor=0.01)
        with pytest.raises(ValueError, match="ccf-ls"):
            CCF().plan(wl, "bogus")


class TestCsvExport:
    def test_round_trips_through_csv_reader(self):
        import csv
        import io

        from repro.experiments.tables import ResultTable

        t = ResultTable(title="t", columns=["a", "b,with,commas"])
        t.add_row(1, 'va"l')
        t.add_row(2, "plain")
        rows = list(csv.reader(io.StringIO(t.to_csv())))
        assert rows[0] == ["a", "b,with,commas"]
        assert rows[1] == ["1", 'va"l']
        assert rows[2] == ["2", "plain"]
