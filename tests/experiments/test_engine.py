"""Tests for the parallel, cache-aware experiment engine."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.engine import (
    Cell,
    CellCache,
    SweepSpec,
    cell_key,
    default_cache_dir,
    derive_seed,
    rows_to_table,
    run_sweep,
)
from repro.experiments.figures import SweepConfig, fig7_sweep
from repro.obs import MetricsRegistry

# Module-level cell functions: worker processes unpickle them by
# reference, so they cannot be closures or lambdas.

#: Cell indices forced to fail (simulated interrupt); cleared per test.
FAIL_CELLS: set = set()


def seeded_row(*, index: int, seed: int) -> list:
    """Deterministic pseudo-random row derived from (index, seed)."""
    if index in FAIL_CELLS:
        raise RuntimeError(f"injected failure in cell {index}")
    s = derive_seed(seed, index)
    return [index, s % 1000, (s % 7919) / 7919.0]


def _grid(n: int, seed: int = 0, version: str = "1") -> SweepSpec:
    return SweepSpec(
        name="test-grid",
        fn=seeded_row,
        cells=[
            Cell(label=f"i={i}", params={"index": i, "seed": seed})
            for i in range(n)
        ],
        assemble=rows_to_table("test grid", ["i", "a", "b"]),
        version=version,
    )


@pytest.fixture(autouse=True)
def _clear_failures():
    FAIL_CELLS.clear()
    yield
    FAIL_CELLS.clear()


class TestRunSweep:
    def test_serial_matches_declaration_order(self):
        out = run_sweep(_grid(5))
        assert [r[0] for r in out.table.rows] == [0, 1, 2, 3, 4]
        assert out.n_cells == 5 and out.hits == 0 and out.misses == 5

    def test_parallel_bit_identical_to_serial(self):
        serial = run_sweep(_grid(6))
        parallel = run_sweep(_grid(6), jobs=3)
        assert parallel.table.rows == serial.table.rows
        assert parallel.table.render() == serial.table.render()

    def test_parallel_bit_identical_on_real_figure_grid(self):
        cfg = SweepConfig(scale_factor=2.0, n_nodes=10)
        spec = fig7_sweep(cfg, (0.0, 0.3))
        serial = run_sweep(spec).table
        parallel = run_sweep(
            fig7_sweep(SweepConfig(scale_factor=2.0, n_nodes=10), (0.0, 0.3)),
            jobs=2,
        ).table
        assert serial.rows == parallel.rows

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(_grid(2), jobs=0)

    def test_progress_lines(self):
        lines = []
        run_sweep(_grid(3), progress=lines.append)
        assert len(lines) == 3
        assert all("test-grid" in ln and "ran in" in ln for ln in lines)

    def test_metrics_counters(self, tmp_path):
        cache = CellCache(tmp_path)
        metrics = MetricsRegistry()
        run_sweep(_grid(4), cache=cache, metrics=metrics)
        run_sweep(_grid(4), cache=cache, metrics=metrics)
        labels = {"experiment": "test-grid"}
        assert metrics.counter(
            "sweep_cells_total", "", labels
        ).value == 8
        assert metrics.counter(
            "sweep_cache_hits_total", "", labels
        ).value == 4
        assert metrics.counter(
            "sweep_cells_executed_total", "", labels
        ).value == 4


class TestCellCache:
    def test_warm_cache_all_hits_and_identical(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_sweep(_grid(4), cache=cache)
        warm = run_sweep(_grid(4), cache=cache)
        assert (cold.hits, cold.misses) == (0, 4)
        assert (warm.hits, warm.misses) == (4, 0)
        assert warm.table.rows == cold.table.rows
        assert warm.table.render() == cold.table.render()

    def test_cache_survives_json_roundtrip_bit_exact(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_sweep(_grid(3), cache=cache)
        for row_cold, row_warm in zip(
            cold.table.rows, run_sweep(_grid(3), cache=cache).table.rows
        ):
            for a, b in zip(row_cold, row_warm):
                assert a == b and type(a) is type(b)

    def test_interrupted_sweep_resumes_from_survivors(self, tmp_path):
        cache = CellCache(tmp_path)
        FAIL_CELLS.add(3)
        with pytest.raises(RuntimeError, match="cell 3"):
            run_sweep(_grid(5), cache=cache)
        FAIL_CELLS.clear()
        resumed = run_sweep(_grid(5), cache=cache)
        # cells 0-2 completed before the injected failure and were cached
        assert resumed.hits == 3 and resumed.misses == 2
        assert resumed.table.rows == run_sweep(_grid(5)).table.rows

    def test_parallel_interrupt_caches_survivors(self, tmp_path):
        cache = CellCache(tmp_path)
        FAIL_CELLS.add(0)
        with pytest.raises(RuntimeError, match="cell 0"):
            run_sweep(_grid(4), cache=cache, jobs=2)
        FAIL_CELLS.clear()
        resumed = run_sweep(_grid(4), cache=cache)
        # every cell except the failed one survived the parallel abort
        assert resumed.hits == 3 and resumed.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _grid(1)
        run_sweep(spec, cache=cache)
        path = cache.path(cell_key(spec, spec.cells[0]))
        path.write_text("{not json")
        again = run_sweep(_grid(1), cache=cache)
        assert again.hits == 0 and again.misses == 1

    def test_document_provenance(self, tmp_path):
        cache = CellCache(tmp_path)
        spec = _grid(1)
        run_sweep(spec, cache=cache)
        doc = json.loads(cache.path(cell_key(spec, spec.cells[0])).read_text())
        assert doc["experiment"] == "test-grid"
        assert doc["label"] == "i=0"
        assert doc["header"]["experiment"] == "test-grid"
        assert "result" in doc

    def test_no_cache_means_no_files(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CCF_CACHE_DIR", str(tmp_path / "unused"))
        run_sweep(_grid(2))
        assert not (tmp_path / "unused").exists()

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("CCF_CACHE_DIR", str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestCellKey:
    def test_stable_for_equal_cells(self):
        spec = _grid(2)
        assert cell_key(spec, spec.cells[0]) == cell_key(_grid(2), _grid(2).cells[0])

    def test_sensitive_to_params(self):
        spec = _grid(2)
        assert cell_key(spec, spec.cells[0]) != cell_key(spec, spec.cells[1])

    def test_sensitive_to_spec_version(self):
        a, b = _grid(1), _grid(1, version="2")
        assert cell_key(a, a.cells[0]) != cell_key(b, b.cells[0])

    def test_sensitive_to_experiment_name(self):
        a = _grid(1)
        b = _grid(1)
        b.name = "other"
        assert cell_key(a, a.cells[0]) != cell_key(b, b.cells[0])

    def test_unserializable_params_raise(self):
        spec = _grid(1)
        bad = Cell(label="bad", params={"x": object()})
        with pytest.raises(TypeError):
            cell_key(spec, bad)


class TestDeriveSeed:
    def test_deterministic_and_in_range(self):
        a = derive_seed(7, "skew", 0.3)
        assert a == derive_seed(7, "skew", 0.3)
        assert 0 <= a < 2**31

    def test_decorrelates_neighbours(self):
        seeds = {derive_seed(0, i) for i in range(100)}
        assert len(seeds) == 100

    def test_pinned_golden_values(self):
        # Cache keys and chaos/noise streams hang off these values:
        # changing the hash recipe silently invalidates every cached
        # sweep, so pin exact outputs.
        assert derive_seed(0) == 1842134767
        assert derive_seed(0, "chaos", "baseline") == 2003218044
        assert derive_seed(7, "skew", 0.3) == 844457844
        assert derive_seed(42, 1, "a") == 981400166

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_stable_across_process_start_methods(self, method):
        # Parallel sweeps must seed identically no matter how the worker
        # was started (PYTHONHASHSEED must not leak in).
        import multiprocessing

        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unavailable")
        ctx = multiprocessing.get_context(method)
        with ctx.Pool(1) as pool:
            remote = pool.apply(derive_seed, (7, "skew", 0.3))
        assert remote == derive_seed(7, "skew", 0.3) == 844457844


@settings(max_examples=5, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    jobs=st.integers(min_value=2, max_value=4),
)
def test_property_parallel_serial_bit_identity(n, seed, jobs):
    """For any seeded grid, parallel and serial tables are bit-identical."""
    serial = run_sweep(_grid(n, seed=seed))
    parallel = run_sweep(_grid(n, seed=seed), jobs=jobs)
    assert serial.table.rows == parallel.table.rows
    assert serial.table.render() == parallel.table.render()
