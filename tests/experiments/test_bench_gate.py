"""Unit tests for the bench regression gate (``check_regression``).

The gate compares per-case reference/incremental speedups, not absolute
epochs/sec, so a uniformly slower or faster machine must not trip it.
"""

from repro.experiments.hotpath import check_regression


def _case(speedup, eps=1000.0, bit_identical=True):
    return {
        "bit_identical": bit_identical,
        "speedup": speedup,
        "inc": {"epochs_per_sec": eps},
    }


class TestCheckRegression:
    def test_identical_payload_passes(self):
        payload = {"cases": {"a": _case(2.0), "b": _case(3.0)}}
        assert check_regression(payload, payload) == []

    def test_uniform_machine_slowdown_passes(self):
        # Same speedups, half the absolute throughput: a slow runner,
        # not a regression.
        base = {"cases": {"a": _case(2.0, eps=1000.0)}}
        cur = {"cases": {"a": _case(2.0, eps=500.0)}}
        assert check_regression(cur, base) == []

    def test_speedup_collapse_fails(self):
        base = {"cases": {"a": _case(2.5)}}
        cur = {"cases": {"a": _case(1.0)}}
        problems = check_regression(cur, base, tolerance=0.3)
        assert len(problems) == 1
        assert "speedup 1.00x" in problems[0]

    def test_tolerance_boundary(self):
        base = {"cases": {"a": _case(2.0)}}
        assert check_regression(
            {"cases": {"a": _case(1.5)}}, base, tolerance=0.3
        ) == []  # 1.5 >= 2.0 * 0.7
        assert check_regression(
            {"cases": {"a": _case(1.3)}}, base, tolerance=0.3
        )  # 1.3 < 1.4

    def test_bit_identity_break_always_fails(self):
        base = {"cases": {"a": _case(2.0)}}
        cur = {"cases": {"a": _case(2.0, bit_identical=False)}}
        problems = check_regression(cur, base)
        assert problems == ["a: reference/incremental results differ"]

    def test_unknown_case_is_skipped(self):
        # A quick run checked against a full baseline only compares the
        # shared keys; extra current-side cases don't error.
        base = {"cases": {"a": _case(2.0)}}
        cur = {"cases": {"a": _case(2.0), "new": _case(0.1)}}
        assert check_regression(cur, base) == []
