"""Tests for the analytical-query suite experiment."""

import pytest

from repro.experiments.querybench import QUERIES, run_query_suite


@pytest.fixture(scope="module")
def table():
    return run_query_suite(n_nodes=5, scale_factor=0.005)


class TestQuerySuite:
    def test_all_queries_present(self, table):
        assert table.column("query") == list(QUERIES)

    def test_rows_positive(self, table):
        for rows in table.column("rows"):
            assert rows > 0

    def test_ccf_not_slower_than_mini_anywhere(self, table):
        for mini, ccf in zip(
            table.column("mini_comm_s"), table.column("ccf_comm_s")
        ):
            assert ccf <= mini + 1e-9

    def test_mini_moves_least_bytes(self, table):
        for mini, hash_, ccf in zip(
            table.column("mini_traffic_mb"),
            table.column("hash_traffic_mb"),
            table.column("ccf_traffic_mb"),
        ):
            assert mini <= hash_ + 1e-9
            assert mini <= ccf + 1e-9

    def test_result_consistency_enforced(self, table):
        # The runner itself raises if strategies disagree; reaching here
        # with rows recorded means the cross-check ran for every query.
        assert len(table.rows) == len(QUERIES)
