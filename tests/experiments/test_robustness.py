"""Tests for the robustness experiments and keyed group-by."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.experiments.robustness import run_failure_recovery, run_robustness
from repro.join.multikey import KeyedGroupBy
from repro.workloads.tpch import TPCHConfig, generate_tpch_keyed


class TestRobustness:
    @pytest.fixture(scope="class")
    def table(self):
        return run_robustness(
            n_nodes=8, scale_factor=0.1, n_jobs=3, schedulers=("fair", "sebf")
        )

    def test_degradation_inflates_cct(self, table):
        for healthy, degraded in zip(
            table.column("healthy"), table.column("degraded")
        ):
            assert degraded >= healthy - 1e-9

    def test_inflation_column_consistent(self, table):
        for h, d, x in zip(
            table.column("healthy"),
            table.column("degraded"),
            table.column("inflation_x"),
        ):
            assert x == pytest.approx(d / h)

    def test_sebf_not_worse_than_fair_when_degraded(self, table):
        named = {r[0]: dict(zip(table.columns, r)) for r in table.rows}
        assert named["sebf"]["degraded"] <= named["fair"]["degraded"] + 1e-9

    def test_failure_summary_columns_present(self, table):
        assert table.column("port_failures")
        # Chaos schedules at least one failure with the default seed, and
        # every row shares the same schedule, so counts are equal.
        counts = set(table.column("port_failures"))
        assert len(counts) == 1 and counts.pop() >= 1
        assert all(c >= 0 for c in table.column("chaos"))

    def test_seed_reproduces_chaos_column(self):
        kw = dict(n_nodes=8, scale_factor=0.1, n_jobs=2, schedulers=("sebf",))
        a = run_robustness(seed=3, **kw)
        b = run_robustness(seed=3, **kw)
        assert a.rows == b.rows


class TestFailureRecovery:
    @pytest.fixture(scope="class")
    def table(self):
        return run_failure_recovery(
            n_nodes=8, scale_factor=0.1, n_jobs=2, schedulers=("sebf",)
        )

    def named(self, table):
        return {
            (r[0], r[1]): dict(zip(table.columns, r)) for r in table.rows
        }

    def test_all_policies_present(self, table):
        assert {r[1] for r in table.rows} == {"abort", "retry", "replan"}

    def test_abort_fails_coflows_others_complete(self, table):
        rows = self.named(table)
        assert rows[("sebf", "abort")]["failed"] >= 1
        for policy in ("retry", "replan"):
            assert rows[("sebf", policy)]["completed"] == 2
            assert rows[("sebf", policy)]["failed"] == 0

    def test_replan_beats_retry(self, table):
        # The default receiver-side failure is exactly what replanning
        # routes around; retry must wait for the repair instead.
        rows = self.named(table)
        assert (
            rows[("sebf", "replan")]["avg_cct"]
            < rows[("sebf", "retry")]["avg_cct"]
        )
        assert rows[("sebf", "replan")]["reroutes"] >= 1
        assert rows[("sebf", "retry")]["restarts"] >= 1

    def test_bytes_lost_reported(self, table):
        # The failure lands mid-transfer, so some progress is wasted.
        rows = self.named(table)
        assert rows[("sebf", "abort")]["bytes_lost"] > 0

    def test_full_node_loss_direction(self):
        table = run_failure_recovery(
            n_nodes=8,
            scale_factor=0.1,
            n_jobs=2,
            schedulers=("sebf",),
            policies=("retry", "replan"),
            fail_direction="both",
        )
        rows = {
            (r[0], r[1]): dict(zip(table.columns, r)) for r in table.rows
        }
        # Source data died with the node, so even replan completes only
        # after the repair -- but never later than plain retry.
        assert (
            rows[("sebf", "replan")]["avg_cct"]
            <= rows[("sebf", "retry")]["avg_cct"] + 1e-9
        )


class TestKeyedGroupBy:
    @pytest.fixture(scope="class")
    def schema(self):
        return generate_tpch_keyed(
            TPCHConfig(n_nodes=4, scale_factor=0.002, skew=0.2, seed=5)
        )

    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_groups_match_centralized(self, schema, strategy):
        agg = KeyedGroupBy(schema["orders"], by="custkey")
        plan = CCF(skew_handling=False).plan(agg, strategy)
        groups, traffic = agg.execute(plan)
        assert groups == agg.expected_groups()
        assert traffic >= 0

    def test_group_by_orderkey_on_lineitem(self, schema):
        agg = KeyedGroupBy(schema["lineitem"], by="orderkey")
        plan = CCF(skew_handling=False).plan(agg, "ccf")
        groups, _ = agg.execute(plan)
        li = np.concatenate(schema["lineitem"].columns["orderkey"])
        assert sum(groups.values()) == li.size

    def test_missing_column_rejected(self, schema):
        with pytest.raises(ValueError, match="group column"):
            KeyedGroupBy(schema["lineitem"], by="custkey")

    def test_pre_aggregation_shrinks_model(self, schema):
        agg = KeyedGroupBy(schema["orders"], by="custkey")
        model = agg.shuffle_model()
        raw_bytes = schema["orders"].total_bytes
        assert model.h.sum() < raw_bytes  # partials < raw rows (skewed key)
