"""The weighted-CCT tournament experiment and its scorecard fold."""

import numpy as np
import pytest

from repro.experiments.engine import run_sweep
from repro.experiments.registry import EXPERIMENTS, SWEEPS
from repro.experiments.tournament import (
    PROVEN_RATIOS,
    WEIGHT_DISTRIBUTIONS,
    WORKLOAD_FAMILIES,
    _assign_weights,
    _make_coflows,
    scorecard,
    tournament_sweep,
)
from repro.network.schedulers import SCHEDULER_NAMES


class TestGridDeclaration:
    def test_registered_as_experiment_and_sweep(self):
        assert "tournament" in EXPERIMENTS
        assert "tournament" in SWEEPS

    def test_full_grid_covers_every_axis_combination(self):
        spec = tournament_sweep()
        assert len(spec.cells) == (
            len(SCHEDULER_NAMES)
            * len(WORKLOAD_FAMILIES)
            * len(WEIGHT_DISTRIBUTIONS)
        )
        labels = {c.label for c in spec.cells}
        assert len(labels) == len(spec.cells)

    def test_quick_grid_still_covers_every_scheduler(self):
        spec = tournament_sweep(quick=True)
        scheds = {c.params["scheduler"] for c in spec.cells}
        assert scheds == set(SCHEDULER_NAMES)
        assert len(spec.cells) == 2 * len(SCHEDULER_NAMES)


class TestWorkloads:
    def test_families_are_deterministic(self):
        for family in WORKLOAD_FAMILIES:
            a = _make_coflows(family, 8, 6, seed=3)
            b = _make_coflows(family, 8, 6, seed=3)
            assert [c.flows for c in a] == [c.flows for c in b]
            assert [c.arrival_time for c in a] == [c.arrival_time for c in b]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            _make_coflows("nope", 8, 6, seed=0)

    def test_weight_distributions(self):
        coflows = _make_coflows("uniform", 8, 20, seed=1)
        unit = _assign_weights(coflows, "unit", seed=0)
        assert all(c.weight == 1.0 for c in unit)
        zipf = _assign_weights(coflows, "zipf", seed=0)
        assert all(1.0 <= c.weight <= 64.0 for c in zipf)
        assert any(c.weight > 1.0 for c in zipf)
        classes = _assign_weights(coflows, "classes", seed=0)
        assert set(c.weight for c in classes) <= {1.0, 4.0}
        # Reweighting must not touch the flows themselves.
        assert [c.flows for c in zipf] == [c.flows for c in coflows]
        with pytest.raises(ValueError, match="distribution"):
            _assign_weights(coflows, "nope", seed=0)


class TestQuickTournament:
    @pytest.fixture(scope="class")
    def quick_grid(self):
        return run_sweep(tournament_sweep(quick=True)).table

    def test_every_gap_is_at_least_one(self, quick_grid):
        gaps = [float(g) for g in quick_grid.column("gap")]
        assert all(g >= 1.0 - 1e-9 for g in gaps)

    def test_guaranteed_schedulers_respect_proven_ratios(self, quick_grid):
        for row in quick_grid.rows:
            ceiling = PROVEN_RATIOS.get(row[0])
            if ceiling is not None:
                assert float(row[6]) <= ceiling, row

    def test_scorecard_ranks_every_scheduler(self, quick_grid):
        card = scorecard(quick_grid)
        assert [r[0] for r in card.rows] == list(
            range(1, len(SCHEDULER_NAMES) + 1)
        )
        assert sorted(r[1] for r in card.rows) == sorted(SCHEDULER_NAMES)
        mean_gaps = [float(r[2]) for r in card.rows]
        assert mean_gaps == sorted(mean_gaps)
        assert all(g >= 1.0 - 1e-9 for g in mean_gaps)

    def test_scorecard_wins_cover_every_instance(self, quick_grid):
        card = scorecard(quick_grid)
        n_instances = len(
            {(r[1], r[2]) for r in quick_grid.rows}
        )
        wins = np.array([int(r[4]) for r in card.rows])
        instances = {int(r[5]) for r in card.rows}
        assert instances == {n_instances}
        # Every instance has at least one winner; ties can award more.
        assert wins.sum() >= n_instances
