"""Tests for the extension experiments (trace / online / topology)."""

import numpy as np
import pytest

from repro.experiments.extensions import (
    run_online_vs_oblivious,
    run_topology_sweep,
    run_trace_schedulers,
)


class TestTraceSchedulers:
    @pytest.fixture(scope="class")
    def table(self):
        return run_trace_schedulers(
            n_ports=16, n_coflows=40, arrival_rate=3.0, deadline_fraction=0.3
        )

    def test_all_disciplines_present(self, table):
        names = table.column("scheduler")
        assert {"fair", "sebf", "dclas", "deadline"} <= set(names)

    def test_sebf_beats_fair_on_average_cct(self, table):
        named = {r[0]: dict(zip(table.columns, r)) for r in table.rows}
        assert named["sebf"]["avg_cct_s"] <= named["fair"]["avg_cct_s"] + 1e-9

    def test_deadline_scheduler_hits_most_deadlines(self, table):
        named = {r[0]: dict(zip(table.columns, r)) for r in table.rows}
        hit = named["deadline"]["deadline_hit_%"]
        assert hit >= named["fifo"]["deadline_hit_%"] - 1e-9
        assert hit >= 80.0

    def test_slowdowns_at_least_one(self, table):
        for v in table.column("avg_slowdown"):
            assert v >= 1.0 - 1e-9


class TestOnlineVsOblivious:
    @pytest.fixture(scope="class")
    def table(self):
        return run_online_vs_oblivious(n_nodes=12, n_jobs=5, inter_arrival=0.4)

    def test_online_wins_on_average_cct(self, table):
        named = {r[0]: dict(zip(table.columns, r)) for r in table.rows}
        assert (
            named["online"]["avg_cct_s"] < named["oblivious"]["avg_cct_s"]
        )

    def test_online_wins_on_makespan(self, table):
        named = {r[0]: dict(zip(table.columns, r)) for r in table.rows}
        assert (
            named["online"]["makespan_s"] <= named["oblivious"]["makespan_s"] + 1e-9
        )


class TestTopologySweep:
    @pytest.fixture(scope="class")
    def table(self):
        return run_topology_sweep(
            n_nodes=12, hosts_per_rack=4, oversubscriptions=(1.0, 4.0, 8.0)
        )

    def test_aware_never_worse(self, table):
        for flat, aware in zip(
            table.column("flat_cct_s"), table.column("aware_cct_s")
        ):
            assert aware <= flat + 1e-9

    def test_aware_strictly_wins_when_oversubscribed(self, table):
        flat = table.column("flat_cct_s")
        aware = table.column("aware_cct_s")
        assert aware[-1] < flat[-1]

    def test_equal_at_full_bisection_or_close(self, table):
        flat = table.column("flat_cct_s")
        aware = table.column("aware_cct_s")
        assert aware[0] == pytest.approx(flat[0], rel=0.15)

    def test_flat_cct_grows_with_oversubscription(self, table):
        flat = table.column("flat_cct_s")
        assert flat == sorted(flat)
