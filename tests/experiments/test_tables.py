"""Unit tests for the result-table renderer."""

import pytest

from repro.experiments.tables import ResultTable


@pytest.fixture
def table():
    t = ResultTable(title="demo", columns=["x", "y"])
    t.add_row(1, 2.5)
    t.add_row(10, 0.001)
    return t


class TestAddRow:
    def test_positional(self, table):
        assert table.rows == [[1, 2.5], [10, 0.001]]

    def test_named(self):
        t = ResultTable(title="t", columns=["a", "b"])
        t.add_row(b=2, a=1)
        assert t.rows == [[1, 2]]

    def test_named_missing_column(self):
        t = ResultTable(title="t", columns=["a", "b"])
        with pytest.raises(ValueError, match="missing"):
            t.add_row(a=1)

    def test_wrong_arity(self, table):
        with pytest.raises(ValueError, match="expected 2"):
            table.add_row(1)

    def test_mixed_rejected(self, table):
        with pytest.raises(ValueError, match="either"):
            table.add_row(1, y=2)


class TestAccessors:
    def test_column(self, table):
        assert table.column("x") == [1, 10]

    def test_column_missing(self, table):
        with pytest.raises(ValueError):
            table.column("z")


class TestRendering:
    def test_render_contains_title_and_values(self, table):
        out = table.render()
        assert "demo" in out and "2.50" in out and "0.001" in out

    def test_notes_rendered(self, table):
        table.add_note("hello")
        assert "note: hello" in table.render()

    def test_markdown(self, table):
        md = table.to_markdown()
        assert md.startswith("**demo**")
        assert "| x | y |" in md
        assert "|---|---|" in md

    def test_render_all(self, table):
        combined = ResultTable.render_all([table, table])
        assert combined.count("demo") == 2
