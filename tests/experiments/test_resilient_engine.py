"""Fault-injection tests for the supervised sweep engine.

Faults are injected through module-level cell functions driven by marker
files in shared temp directories (workers see the same filesystem), so a
fault fires a controlled number of times and then clears -- letting each
test assert both the recovery *and* that recovered results are
bit-identical to a fault-free serial run.
"""

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import pytest

from repro.core.resilience import Backoff, CellTimeout, WorkerCrash
from repro.experiments.engine import (
    Cell,
    CellCache,
    SweepInterrupted,
    SweepSpec,
    cell_key,
    derive_seed,
    result_digest,
    rows_to_table,
    run_sweep,
)
from repro.obs import MetricsRegistry, Tracer

# Module-level cell functions: worker processes unpickle them by
# reference, so they cannot be closures or lambdas.  Fault parameters
# never influence the returned row, which is what makes the
# bit-identity-under-faults assertions meaningful.


def _row(index: int, seed: int) -> list:
    s = derive_seed(seed, index)
    return [index, s % 1000, (s % 7919) / 7919.0]


def plain_row(*, index: int, seed: int, **_faults) -> list:
    return _row(index, seed)


def flaky_row(*, index: int, seed: int, fail_dir: str = "",
              fail_times: int = 0) -> list:
    """Fail transiently ``fail_times`` times per cell, then succeed."""
    if fail_dir and fail_times:
        marker = Path(fail_dir) / f"cell-{index}"
        n = int(marker.read_text()) if marker.exists() else 0
        if n < fail_times:
            marker.write_text(str(n + 1))
            raise OSError(f"transient failure {n + 1} in cell {index}")
    return _row(index, seed)


def killer_row(*, index: int, seed: int, kill_dir: str = "",
               always: bool = False) -> list:
    """Kill the hosting worker process hard (once per cell, or always)."""
    if kill_dir and multiprocessing.parent_process() is not None:
        marker = Path(kill_dir) / f"killed-{index}"
        if always or not marker.exists():
            marker.write_text("x")
            os.kill(os.getpid(), signal.SIGKILL)
    return _row(index, seed)


def sleepy_row(*, index: int, seed: int, slow_dir: str = "") -> list:
    """Overrun any sane cell timeout, once per cell."""
    if slow_dir:
        marker = Path(slow_dir) / f"slow-{index}"
        if not marker.exists():
            marker.write_text("x")
            time.sleep(60.0)
    return _row(index, seed)


def interrupting_row(*, index: int, seed: int, interrupt_at: int = -1) -> list:
    """Simulate Ctrl-C landing while this cell runs."""
    if index == interrupt_at:
        raise KeyboardInterrupt
    return _row(index, seed)


def chaos_row(*, index: int, seed: int, fault_dir: str = "",
              kill_at: int = -1, slow_at: int = -1) -> list:
    """Combined faults: one cell kills its worker, one overruns."""
    if fault_dir and index == kill_at:
        if multiprocessing.parent_process() is not None:
            marker = Path(fault_dir) / f"killed-{index}"
            if not marker.exists():
                marker.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
    if fault_dir and index == slow_at:
        marker = Path(fault_dir) / f"slow-{index}"
        if not marker.exists():
            marker.write_text("x")
            time.sleep(60.0)
    return _row(index, seed)


def _spec(fn, n: int, seed: int = 0, **fault_params) -> SweepSpec:
    return SweepSpec(
        name="fault-grid",
        fn=fn,
        cells=[
            Cell(label=f"i={i}",
                 params={"index": i, "seed": seed, **fault_params})
            for i in range(n)
        ],
        assemble=rows_to_table("fault grid", ["i", "a", "b"]),
    )


RETRY = Backoff(max_attempts=3, base_delay=0.01, max_delay=0.05, jitter=0.0)


class TestRetries:
    def test_transient_failures_retried_to_success(self, tmp_path):
        out = run_sweep(
            _spec(flaky_row, 4, fail_dir=str(tmp_path), fail_times=1),
            retry=RETRY,
        )
        assert out.retries == 4  # every cell failed exactly once
        assert out.table.rows == run_sweep(_spec(plain_row, 4)).table.rows

    def test_parallel_retries_match_serial(self, tmp_path):
        out = run_sweep(
            _spec(flaky_row, 4, fail_dir=str(tmp_path), fail_times=1),
            retry=RETRY,
            jobs=2,
        )
        assert out.retries >= 1
        assert out.table.rows == run_sweep(_spec(plain_row, 4)).table.rows

    def test_exhausted_retries_raise_the_cell_error(self, tmp_path):
        with pytest.raises(OSError, match="transient"):
            run_sweep(
                _spec(flaky_row, 2, fail_dir=str(tmp_path), fail_times=99),
                retry=RETRY,
            )

    def test_no_policy_fails_fast(self, tmp_path):
        with pytest.raises(OSError, match="failure 1"):
            run_sweep(
                _spec(flaky_row, 2, fail_dir=str(tmp_path), fail_times=1)
            )

    def test_retry_metrics_and_platform_events(self, tmp_path):
        metrics = MetricsRegistry()
        tracer = Tracer()
        run_sweep(
            _spec(flaky_row, 2, fail_dir=str(tmp_path), fail_times=1),
            retry=RETRY,
            metrics=metrics,
            instrumentation=tracer,
        )
        labels = {"experiment": "fault-grid"}
        assert metrics.counter("sweep_retries_total", "", labels).value == 2
        retries = [e for e in tracer.events if e["kind"] == "platform_event"
                   and e["event"] == "retry"]
        assert len(retries) == 2
        assert retries[0]["experiment"] == "fault-grid"
        assert retries[0]["detail"] == "OSError"


class TestCellTimeouts:
    def test_timed_out_cell_retries_to_success(self, tmp_path):
        out = run_sweep(
            _spec(sleepy_row, 2, slow_dir=str(tmp_path)),
            retry=RETRY,
            cell_timeout_s=0.3,
            jobs=2,
        )
        assert out.timeouts == 2 and out.retries == 2
        assert out.table.rows == run_sweep(_spec(plain_row, 2)).table.rows

    def test_timeout_without_retry_raises(self, tmp_path):
        with pytest.raises(CellTimeout, match="timeout"):
            run_sweep(
                _spec(sleepy_row, 1, slow_dir=str(tmp_path)),
                cell_timeout_s=0.3,
            )


class TestWorkerCrashes:
    def test_pool_rebuilt_and_lost_cells_redispatched(self, tmp_path):
        metrics = MetricsRegistry()
        out = run_sweep(
            _spec(killer_row, 4, kill_dir=str(tmp_path)),
            jobs=2,
            metrics=metrics,
        )
        assert out.worker_crashes >= 1 and out.pool_rebuilds >= 1
        assert out.table.rows == run_sweep(_spec(plain_row, 4)).table.rows
        labels = {"experiment": "fault-grid"}
        assert metrics.counter(
            "sweep_worker_crashes_total", "", labels
        ).value >= 1

    def test_persistent_crasher_raises_worker_crash(self, tmp_path):
        with pytest.raises(WorkerCrash, match="pool broke") as info:
            run_sweep(
                _spec(killer_row, 2, kill_dir=str(tmp_path), always=True),
                jobs=2,
                max_pool_rebuilds=1,
            )
        report = info.value.report
        assert report["context"]["experiment"] == "fault-grid"
        assert report["context"]["lost_cells"]

    def test_serial_mode_never_kills_the_parent(self, tmp_path):
        # killer_row only fires inside worker processes; jobs=1 runs in
        # the parent, so the sweep must complete untouched.
        out = run_sweep(_spec(killer_row, 2, kill_dir=str(tmp_path)))
        assert out.worker_crashes == 0
        assert out.table.rows == run_sweep(_spec(plain_row, 2)).table.rows


class TestCacheIntegrity:
    def _poison(self, cache, spec, i, text):
        path = cache.path(cell_key(spec, spec.cells[i]))
        path.write_text(text)
        return path

    def test_truncated_entry_quarantined_and_recomputed(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        spec = _spec(plain_row, 3)
        clean = run_sweep(spec, cache=cache)
        good = cache.path(cell_key(spec, spec.cells[1])).read_text()
        self._poison(cache, spec, 1, good[: len(good) // 2])
        again = run_sweep(_spec(plain_row, 3), cache=cache)
        assert again.quarantined == 1
        assert (again.hits, again.misses) == (2, 1)
        assert again.table.rows == clean.table.rows
        assert len(list(cache.quarantine_dir().iterdir())) == 1

    def test_bit_flipped_result_fails_checksum(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        spec = _spec(plain_row, 1)
        run_sweep(spec, cache=cache)
        path = cache.path(cell_key(spec, spec.cells[0]))
        doc = json.loads(path.read_text())
        doc["result"][1] += 1  # silent corruption: valid JSON, wrong data
        path.write_text(json.dumps(doc))
        metrics = MetricsRegistry()
        again = run_sweep(_spec(plain_row, 1), cache=cache, metrics=metrics)
        assert again.quarantined == 1 and again.misses == 1
        assert metrics.counter(
            "sweep_quarantined_total", "", {"experiment": "fault-grid"}
        ).value == 1

    def test_pre_checksum_entries_still_hit(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        spec = _spec(plain_row, 1)
        run_sweep(spec, cache=cache)
        path = cache.path(cell_key(spec, spec.cells[0]))
        doc = json.loads(path.read_text())
        del doc["sha256"]  # entry written before checksums existed
        path.write_text(json.dumps(doc))
        again = run_sweep(_spec(plain_row, 1), cache=cache)
        assert again.hits == 1 and again.quarantined == 0

    def test_digest_matches_stored_entries(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        spec = _spec(plain_row, 1)
        run_sweep(spec, cache=cache)
        doc = json.loads(
            cache.path(cell_key(spec, spec.cells[0])).read_text()
        )
        assert doc["sha256"] == result_digest(doc["result"])


class TestInterrupt:
    def test_serial_interrupt_reports_partial_progress(self, tmp_path):
        cache = CellCache(tmp_path / "cache")
        with pytest.raises(SweepInterrupted) as info:
            run_sweep(
                _spec(interrupting_row, 5, interrupt_at=3), cache=cache
            )
        assert info.value.completed == 3 and info.value.n_cells == 5
        # completed cells were flushed: a resume (same cell params, so
        # same cache keys) only runs the rest
        resumed = run_sweep(
            _spec(plain_row, 5, interrupt_at=3), cache=cache
        )
        assert resumed.hits == 3

    def test_parallel_interrupt_raises_sweep_interrupted(self):
        with pytest.raises(SweepInterrupted):
            run_sweep(
                _spec(interrupting_row, 4, interrupt_at=2), jobs=2
            )

    def test_sweep_interrupted_is_a_keyboard_interrupt(self):
        assert issubclass(SweepInterrupted, KeyboardInterrupt)


class TestAcceptance:
    def test_kill_plus_corruption_plus_timeout_is_bit_identical(
        self, tmp_path
    ):
        """The acceptance scenario: one sweep survives a worker kill,
        a corrupted cache file and a forced cell timeout, and its table
        is bit-identical to a fault-free serial run."""
        fault_dir = tmp_path / "faults"
        fault_dir.mkdir()
        faults = {
            "fault_dir": str(fault_dir), "kill_at": 0, "slow_at": 5
        }
        fault_free = run_sweep(
            _spec(plain_row, 6, **faults)  # plain_row ignores fault params
        ).table

        # Plant a corrupted (truncated) cache entry for cell 2.
        cache = CellCache(tmp_path / "cache")
        spec = _spec(chaos_row, 6, **faults)
        path = cache.path(cell_key(spec, spec.cells[2]))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text('{"experiment": "fault-grid", "result": [2, 4')

        out = run_sweep(
            spec,
            jobs=2,
            retry=RETRY,
            cell_timeout_s=2.0,
            cache=cache,
        )
        assert out.quarantined == 1  # the planted corruption was caught
        assert out.worker_crashes >= 1  # the kill broke (a) pool
        assert out.table.rows == fault_free.rows
        assert out.table.render() == fault_free.render()
        # And the survivors are all cached: a re-run is pure hits.
        again = run_sweep(_spec(chaos_row, 6, **faults), cache=cache)
        assert again.hits == 6
        assert again.table.rows == fault_free.rows
