"""Tests for the partition-granularity sweep."""

import pytest

from repro.experiments.psweep import run_partition_sweep


@pytest.fixture(scope="module")
def table():
    return run_partition_sweep(
        n_nodes=16, total_gb=4.0, multipliers=(1, 5, 15)
    )


class TestPartitionSweep:
    def test_ccf_best_at_every_granularity(self, table):
        for hash_, mini, ccf in zip(
            table.column("hash_cct_s"),
            table.column("mini_cct_s"),
            table.column("ccf_cct_s"),
        ):
            assert ccf <= hash_ + 1e-9
            assert ccf <= mini + 1e-9

    def test_finer_granularity_helps_ccf(self, table):
        ccf = table.column("ccf_cct_s")
        assert ccf[-1] < ccf[0]

    def test_solve_time_grows_with_p(self, table):
        ms = table.column("ccf_solve_ms")
        assert ms[-1] > ms[0]

    def test_rows_match_multipliers(self, table):
        assert table.column("p_per_node") == [1, 5, 15]
