"""Property-based tests (hypothesis) pinning observability's zero impact.

Instrumentation must be a pure *observer*: across random fabrics,
workloads, chaos schedules and noisy estimates, running with a
:class:`~repro.obs.Tracer` attached (and/or ``record_timeline=True``)
has to produce the bit-identical ``SimulationResult`` of the untraced
run -- same CCT floats, same epoch count, same failure log.  The trace
itself must agree with the result it observed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise import NoisyEstimates
from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.schedulers import make_scheduler
from repro.obs import Tracer

SCHEDULERS = ("sebf", "dclas", "fair", "wss", "fifo", "scf", "ncf")


@st.composite
def workloads(draw):
    """A small random fabric + coflow set with staggered arrivals."""
    n_ports = draw(st.integers(3, 6))
    n_coflows = draw(st.integers(2, 8))
    coflows = []
    for cid in range(n_coflows):
        width = draw(st.integers(1, 4))
        flows = []
        for _ in range(width):
            src = draw(st.integers(0, n_ports - 1))
            dst = draw(st.integers(0, n_ports - 2))
            if dst >= src:
                dst += 1
            vol = draw(
                st.floats(0.01, 20.0, allow_nan=False, allow_infinity=False)
            )
            flows.append(Flow(src, dst, vol))
        arrival = draw(st.floats(0.0, 10.0, allow_nan=False))
        coflows.append(
            Coflow(flows=flows, arrival_time=arrival, coflow_id=cid)
        )
    return n_ports, coflows


def _fingerprint(result):
    return (
        tuple(sorted(result.ccts.items())),
        tuple(sorted(result.completion_times.items())),
        result.n_epochs,
        tuple(sorted(result.failed_coflows)),
        tuple((r.kind, r.time, r.flows) for r in result.failures),
    )


def _run(n_ports, coflows, scheduler, *, tracer=None, timeline=False,
         dynamics=None, recovery=None, noise=None):
    sim = CoflowSimulator(
        Fabric(n_ports=n_ports, rate=1.0),
        make_scheduler(scheduler),
        dynamics=dynamics,
        recovery=recovery,
        estimate_noise=noise,
        record_timeline=timeline,
        instrumentation=tracer,
    )
    return sim.run([Coflow(list(c.flows), c.arrival_time, c.coflow_id)
                    for c in coflows])


class TestTracingBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(workloads(), st.sampled_from(SCHEDULERS), st.booleans())
    def test_plain(self, wl, scheduler, timeline):
        n_ports, coflows = wl
        off = _run(n_ports, coflows, scheduler)
        on = _run(n_ports, coflows, scheduler, tracer=Tracer(),
                  timeline=timeline)
        assert _fingerprint(off) == _fingerprint(on)

    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        st.sampled_from(("sebf", "dclas", "fair")),
        st.integers(0, 2 ** 16),
        st.floats(0.05, 0.6),
        st.floats(0.0, 0.3),
    )
    def test_noisy_estimates(self, wl, scheduler, seed, sigma, censor):
        n_ports, coflows = wl
        noise = dict(sigma=sigma, censor_fraction=censor, seed=seed)
        off = _run(
            n_ports, coflows, scheduler, noise=NoisyEstimates(**noise)
        )
        on = _run(
            n_ports, coflows, scheduler, noise=NoisyEstimates(**noise),
            tracer=Tracer(),
        )
        assert _fingerprint(off) == _fingerprint(on)

    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        st.sampled_from(("sebf", "fair", "wss")),
        st.integers(0, 2),
        st.floats(0.5, 20.0),
        st.floats(1.0, 30.0),
        st.sampled_from(("retry", "replan", "abort")),
    )
    def test_chaos_schedule(
        self, wl, scheduler, port, fail_at, downtime, policy
    ):
        n_ports, coflows = wl
        def events():
            return FabricDynamics([
                RateEvent.failure(fail_at, port),
                RateEvent.recovery(
                    fail_at + downtime, port, egress=1.0, ingress=1.0
                ),
            ])
        off = _run(
            n_ports, coflows, scheduler,
            dynamics=events(), recovery=policy,
        )
        tracer = Tracer()
        on = _run(
            n_ports, coflows, scheduler,
            dynamics=events(), recovery=policy, tracer=tracer,
        )
        assert _fingerprint(off) == _fingerprint(on)
        # the trace's failure log mirrors the result's
        traced = [
            (e["failure_kind"], e["t"], e["flows"])
            for e in tracer.events
            if e["kind"] == "failure"
        ]
        assert traced == [(r.kind, r.time, r.flows) for r in on.failures]


class TestTraceAgreesWithResult:
    @settings(max_examples=25, deadline=None)
    @given(workloads(), st.sampled_from(SCHEDULERS))
    def test_trace_self_consistency(self, wl, scheduler):
        n_ports, coflows = wl
        tracer = Tracer()
        res = _run(n_ports, coflows, scheduler, tracer=tracer)
        done = {
            e["cid"]: e["cct"]
            for e in tracer.events
            if e["kind"] == "coflow_complete"
        }
        assert done == res.ccts
        epochs = [e for e in tracer.events if e["kind"] == "epoch"]
        assert 0 < len(epochs) <= res.n_epochs
        assert tracer.events[-1]["makespan"] == res.makespan
        submitted = {
            e["cid"] for e in tracer.events if e["kind"] == "coflow_submit"
        }
        assert submitted == {c.coflow_id for c in coflows}
