"""Packaging and public-API sanity checks."""

import compileall
import importlib
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

PUBLIC_PACKAGES = [
    "repro",
    "repro.core",
    "repro.network",
    "repro.network.schedulers",
    "repro.join",
    "repro.workloads",
    "repro.analytics",
    "repro.experiments",
]


class TestPackaging:
    def test_everything_compiles(self):
        assert compileall.compile_dir(str(SRC), quiet=2, force=True)

    def test_py_typed_marker_present(self):
        assert (SRC / "py.typed").exists()

    def test_version_exposed(self):
        import repro

        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("pkg", PUBLIC_PACKAGES)
    def test_all_exports_resolve(self, pkg):
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{pkg}.__all__ lists missing {name}"

    def test_no_private_leaks_in_top_level_all(self):
        import repro

        for name in repro.__all__:
            assert not name.startswith("_") or name == "__version__"

    def test_cli_entry_point_importable(self):
        from repro.cli import main

        assert callable(main)

    def test_docstrings_on_public_modules(self):
        for pkg in PUBLIC_PACKAGES:
            mod = importlib.import_module(pkg)
            assert mod.__doc__, f"{pkg} lacks a module docstring"


class TestDoctests:
    @pytest.mark.parametrize(
        "module",
        [
            "repro.analytics.catalog",
            "repro.network.simulator",
            "repro.core.framework",
            "repro.core.online",
        ],
    )
    def test_module_doctests_pass(self, module):
        import doctest

        mod = importlib.import_module(module)
        result = doctest.testmod(mod, verbose=False)
        assert result.failed == 0, f"{module}: {result.failed} doctest failures"
