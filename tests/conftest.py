"""Shared fixtures and helpers for the CCF test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import ShuffleModel
from repro.network.fabric import Fabric


def brute_force_metrics(h: np.ndarray, dest: np.ndarray, v0: np.ndarray | None = None):
    """Reference (loop-based) computation of traffic / send / recv / T.

    Used to validate the vectorized ShuffleModel.evaluate.
    """
    n, p = h.shape
    vol = np.zeros((n, n))
    if v0 is not None:
        vol += v0
    for k in range(p):
        for i in range(n):
            vol[i, dest[k]] += h[i, k]
    send = np.array([vol[i].sum() - vol[i, i] for i in range(n)])
    recv = np.array([vol[:, j].sum() - vol[j, j] for j in range(n)])
    traffic = float(send.sum())
    t = float(max(send.max(), recv.max()))
    return traffic, send, recv, t


def random_model(
    rng: np.random.Generator,
    n: int,
    p: int,
    *,
    sparse: float = 0.0,
    with_v0: bool = False,
    rate: float = 1.0,
) -> ShuffleModel:
    """A random integer-valued shuffle model (integers avoid float-tie flak)."""
    h = rng.integers(0, 20, size=(n, p)).astype(float)
    if sparse > 0:
        h *= rng.random((n, p)) >= sparse
    v0 = None
    if with_v0:
        v0 = rng.integers(0, 5, size=(n, n)).astype(float)
        np.fill_diagonal(v0, 0.0)
    return ShuffleModel(h=h, v0=v0, rate=rate)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def unit_fabric() -> Fabric:
    """Three ports at unit rate -- the motivating example's network."""
    return Fabric(n_ports=3, rate=1.0)


@pytest.fixture
def small_model(rng) -> ShuffleModel:
    """A 4-node, 12-partition random model at unit rate."""
    return random_model(rng, 4, 12)
