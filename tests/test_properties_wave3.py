"""Property-based tests for the third wave of modules.

Covers: weighted max-min conservation, local-search monotonicity, keyed
shuffles, injector-driven simulations, the predictor's bounds, and the
outer-join counting identity.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.heuristic import ccf_heuristic
from repro.core.localsearch import refine_assignment
from repro.core.model import ShuffleModel
from repro.core.predictor import predict_ccts
from repro.join.multikey import KeyedRelation, execute_keyed_shuffle
from repro.join.outer import semijoin_reduction
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.network.schedulers.base import maxmin_fill
from repro.workloads.analytic import AnalyticJoinWorkload


class TestWeightedMaxMinProperties:
    @given(
        st.integers(2, 6),
        st.integers(1, 15),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_capacities_respected_with_weights(self, n, m, seed):
        rng = np.random.default_rng(seed)
        srcs = rng.integers(0, n, m)
        dsts = (srcs + 1 + rng.integers(0, n - 1, m)) % n
        weights = rng.uniform(0.1, 5.0, m)
        rates = maxmin_fill(
            srcs, dsts, np.ones(n), np.ones(n), weights=weights
        )
        out = np.bincount(srcs, weights=rates, minlength=n)
        inb = np.bincount(dsts, weights=rates, minlength=n)
        assert (out <= 1 + 1e-6).all() and (inb <= 1 + 1e-6).all()
        # Work conservation: every flow crosses a saturated port.
        for f in range(m):
            assert out[srcs[f]] >= 1 - 1e-6 or inb[dsts[f]] >= 1 - 1e-6

    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_weight_ordering_on_shared_port(self, n, seed):
        rng = np.random.default_rng(seed)
        # All flows share egress port 0 with distinct destinations.
        m = n - 1
        srcs = np.zeros(m, dtype=np.int64)
        dsts = np.arange(1, n)
        weights = rng.uniform(0.5, 3.0, m)
        rates = maxmin_fill(
            srcs, dsts, np.ones(n), np.ones(n), weights=weights
        )
        # Rates proportional to weights on the single bottleneck.
        ratio = rates / weights
        np.testing.assert_allclose(ratio, ratio[0], rtol=1e-9)


class TestLocalSearchProperties:
    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(2, 4), st.integers(1, 6)),
            elements=st.integers(0, 30),
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_never_hurts_from_any_start(self, h, seed):
        model = ShuffleModel(h=h.astype(float), rate=1.0)
        rng = np.random.default_rng(seed)
        start = rng.integers(0, model.n, model.p)
        res = refine_assignment(model, start)
        assert res.final_t <= res.initial_t + 1e-9
        assert res.final_t == pytest.approx(
            model.evaluate(res.dest).bottleneck_bytes
        )

    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(2, 4), st.integers(1, 6)),
            elements=st.integers(0, 30),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_never_hurts_from_greedy(self, h):
        model = ShuffleModel(h=h.astype(float), rate=1.0)
        start = ccf_heuristic(model)
        res = refine_assignment(model, start)
        assert res.final_t <= model.evaluate(start).bottleneck_bytes + 1e-9


class TestKeyedShuffleProperties:
    @given(st.integers(2, 4), st.integers(1, 8), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_rows_conserved_and_parallel(self, n, p, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 40))
        keys = rng.integers(0, 25, m)
        rel = KeyedRelation.from_rows(
            {"k": keys, "v": keys * 7 + 1},
            rng.integers(0, n, m),
            n,
            payload_bytes=4.0,
        )
        part = HashPartitioner(p=p)
        dest = rng.integers(0, n, p)
        out, vol = execute_keyed_shuffle(rel, part, dest, on="k")
        assert out.total_tuples == m
        for node in range(n):
            rows = out.node_rows(node)
            np.testing.assert_array_equal(rows["v"], rows["k"] * 7 + 1)
        assert vol.sum() == pytest.approx(m * 4.0)


class TestPredictorProperties:
    @given(
        st.integers(10, 120),
        st.floats(0.0, 1.2),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_predictions_positive_and_ordered(self, n, zipf_s, skew):
        wl = AnalyticJoinWorkload(
            n_nodes=n, scale_factor=1.0, zipf_s=zipf_s, skew=skew
        )
        pred = predict_ccts(wl)
        assert pred.hash_cct > 0 and pred.mini_cct > 0
        assert pred.ccf_cct >= 0
        # CCF never predicted slower than either baseline on this
        # workload class.
        assert pred.ccf_cct <= pred.mini_cct + 1e-9
        assert pred.ccf_cct <= pred.hash_cct + 1e-9


class TestSemiJoinProperties:
    @given(st.integers(2, 4), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_reduction_sound_and_complete(self, n, seed):
        rng = np.random.default_rng(seed)
        small = DistributedRelation(
            shards=[rng.integers(0, 15, rng.integers(0, 20)) for _ in range(n)]
        )
        big = DistributedRelation(
            shards=[rng.integers(0, 40, rng.integers(0, 50)) for _ in range(n)]
        )
        red = semijoin_reduction(small, big)
        small_keys = set(small.all_keys().tolist())
        # Sound: every surviving key matches something.
        assert set(red.reduced.all_keys().tolist()) <= small_keys
        # Complete: no matching row was dropped.
        from repro.join.local import join_cardinality

        assert join_cardinality(
            small.all_keys(), red.reduced.all_keys()
        ) == join_cardinality(small.all_keys(), big.all_keys())
