"""``ccf stats`` internals: trace summaries, attribution, reconstruction."""

import pytest

from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.schedulers import make_scheduler
from repro.network.visualize import gantt
from repro.obs import (
    Tracer,
    names_from_trace,
    render_summary,
    result_from_trace,
    summarize_trace,
)
from repro.obs.header import repro_header
from repro.obs.stats import _percentiles


def _run(tracer, **kwargs):
    sim = CoflowSimulator(
        Fabric(n_ports=3, rate=1.0),
        make_scheduler("sebf"),
        instrumentation=tracer,
        **kwargs,
    )
    return sim.run(
        [
            Coflow([Flow(0, 1, 4.0), Flow(1, 2, 2.0)], 0.0, coflow_id=0,
                   name="alpha"),
            Coflow([Flow(2, 0, 3.0)], 1.0, coflow_id=1),
        ]
    )


class TestPercentiles:
    def test_empty(self):
        p = _percentiles([])
        assert p == {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0,
                     "max": 0.0}

    def test_order(self):
        p = _percentiles([1.0, 2.0, 3.0, 100.0])
        assert p["p50"] <= p["p95"] <= p["p99"] <= p["max"] == 100.0


class TestSummarize:
    def test_counts_and_cct(self):
        tracer = Tracer()
        res = _run(tracer)
        s = summarize_trace(tracer.events, tracer.header)
        assert s["coflows"] == {"submitted": 2, "completed": 2, "aborted": 0}
        assert s["makespan_seconds"] == res.makespan
        assert s["total_bytes"] == res.total_bytes
        assert s["cct_seconds"]["max"] == pytest.approx(max(res.ccts.values()))
        assert 0 < s["epochs"]["count"] <= res.n_epochs
        assert s["failures"]["by_kind"] == {}

    def test_port_attribution(self):
        tracer = Tracer()
        _run(tracer)
        s = summarize_trace(tracer.events)
        assert s["ports"] is not None
        top = s["ports"]["top"]
        assert top
        fracs = [r["bottleneck_frac"] for r in top]
        assert fracs == sorted(fracs, reverse=True)
        assert sum(fracs) <= 1.0 + 1e-9
        assert all(r["dir"] in ("send", "recv") for r in top)

    def test_no_port_samples(self):
        tracer = Tracer(sample_ports=False)
        _run(tracer)
        s = summarize_trace(tracer.events)
        assert s["ports"] is None

    def test_failures_counted(self):
        tracer = Tracer()
        res = _run(
            tracer,
            dynamics=FabricDynamics([RateEvent.failure(0.5, 0)]),
            recovery="abort",
        )
        s = summarize_trace(tracer.events)
        assert s["coflows"]["aborted"] == len(res.failed_coflows) > 0
        assert s["failures"]["by_kind"].get("port_failed") == 1
        assert s["failures"]["bytes_lost"] == res.bytes_lost

    def test_first_byte_wait(self):
        tracer = Tracer()
        _run(tracer)
        s = summarize_trace(tracer.events)
        assert s["first_byte_wait_seconds"]["max"] >= 0.0


class TestRenderSummary:
    def test_text_sections(self):
        tracer = Tracer(header=repro_header(scheduler="sebf", seed=1))
        _run(tracer)
        text = render_summary(summarize_trace(tracer.events, tracer.header))
        assert "trace: " in text
        assert "scheduler=sebf" in text
        assert "coflows: 2 submitted" in text
        assert "CCT (s): p50=" in text
        assert "bottleneck attribution" in text
        assert "failures: none" in text

    def test_no_ports_message(self):
        tracer = Tracer(sample_ports=False)
        _run(tracer)
        text = render_summary(summarize_trace(tracer.events))
        assert "no per-port samples" in text


class TestResultFromTrace:
    def test_reconstruction_matches(self):
        tracer = Tracer()
        res = _run(tracer, record_timeline=True)
        rebuilt = result_from_trace(tracer.events)
        assert rebuilt.ccts == res.ccts
        assert rebuilt.completion_times == res.completion_times
        assert rebuilt.makespan == res.makespan
        assert rebuilt.total_bytes == res.total_bytes
        assert len(rebuilt.epochs) == len(res.epochs)
        assert [e.start for e in rebuilt.epochs] == [
            e.start for e in res.epochs
        ]

    def test_failures_rebuilt(self):
        tracer = Tracer()
        res = _run(
            tracer,
            dynamics=FabricDynamics([RateEvent.failure(0.5, 0)]),
            recovery="abort",
        )
        rebuilt = result_from_trace(tracer.events)
        assert rebuilt.failed_coflows == res.failed_coflows
        assert [r.kind for r in rebuilt.failures] == [
            r.kind for r in res.failures
        ]
        assert rebuilt.bytes_lost == res.bytes_lost

    def test_gantt_renders_from_rebuilt(self):
        tracer = Tracer()
        _run(tracer)
        rebuilt = result_from_trace(tracer.events)
        chart = gantt(rebuilt, names=names_from_trace(tracer.events))
        assert "alpha" in chart
        assert "makespan" in chart

    def test_names_from_trace(self):
        tracer = Tracer()
        _run(tracer)
        assert names_from_trace(tracer.events) == {0: "alpha", 1: "cf1"}


class TestHeader:
    def test_header_fields(self):
        h = repro_header(
            seed=5, scheduler="fair", fabric=Fabric(n_ports=4, rate=2.0),
            strategy="ccf",
        )
        assert h["schema"] == 1
        assert h["package"] == "repro"
        assert h["version"]
        assert h["seed"] == 5
        assert h["scheduler"] == "fair"
        assert h["fabric"] == {"n_ports": 4, "rate": 2.0}
        assert h["strategy"] == "ccf"
        assert "python" in h["platform"]

    def test_header_minimal(self):
        h = repro_header()
        assert "seed" not in h and "scheduler" not in h and "fabric" not in h


class TestPlatformCounters:
    def test_old_traces_have_no_platform_section(self):
        tracer = Tracer()
        _run(tracer)
        s = summarize_trace(tracer.events, tracer.header)
        assert s["platform"] is None
        assert "platform faults" not in render_summary(s)

    def test_platform_events_are_counted_and_rendered(self):
        tracer = Tracer()
        _run(tracer)
        for event in ("retry", "retry", "cell_timeout", "worker_crash",
                      "quarantine"):
            tracer.platform_event(
                event, time=0.0, experiment="chaos", cell="scenario=x",
            )
        s = summarize_trace(tracer.events, tracer.header)
        assert s["platform"] == {
            "retry": 2,
            "cell_timeout": 1,
            "worker_crash": 1,
            "quarantine": 1,
        }
        text = render_summary(s)
        assert "platform faults absorbed" in text
        assert "retry=2" in text

    def test_simulation_sections_unaffected_by_platform_events(self):
        # The schema is additive: the same trace with platform events
        # interleaved summarizes the simulation identically.
        tracer = Tracer()
        _run(tracer)
        before = summarize_trace(tracer.events, tracer.header)
        tracer.platform_event("pool_rebuild", time=1.0, experiment="chaos")
        after = summarize_trace(tracer.events, tracer.header)
        assert after["coflows"] == before["coflows"]
        assert after["cct_seconds"] == before["cct_seconds"]
        assert after["failures"] == before["failures"]
        assert after["events_total"] == before["events_total"] + 1


class TestTruncatedTimeline:
    """Detection of partial (ring-buffered) epoch streams in traces."""

    def _truncate_epochs(self, events, drop):
        """Drop the first ``drop`` epoch samples, keep everything else."""
        seen = 0
        out = []
        for e in events:
            if e["kind"] == "epoch" and seen < drop:
                seen += 1
                continue
            out.append(e)
        assert seen == drop
        return out

    def test_complete_trace_is_not_flagged(self):
        tracer = Tracer()
        _run(tracer)
        s = summarize_trace(tracer.events, tracer.header)
        assert s["epochs"]["truncated"] is False
        assert "WARNING" not in render_summary(s)

    def test_missing_head_is_flagged(self):
        tracer = Tracer()
        _run(tracer)
        events = self._truncate_epochs(tracer.events, 2)
        s = summarize_trace(events, tracer.header)
        assert s["epochs"]["truncated"] is True
        full = summarize_trace(tracer.events, tracer.header)
        assert s["epochs"]["count"] == full["epochs"]["count"] - 2
        text = render_summary(s)
        assert "WARNING" in text and "truncated" in text

    def test_truncation_does_not_change_coflow_stats(self):
        # CCTs come from lifecycle events, not epoch samples: the flag
        # must warn without perturbing the sections that are still exact.
        tracer = Tracer()
        _run(tracer)
        full = summarize_trace(tracer.events, tracer.header)
        cut = summarize_trace(
            self._truncate_epochs(tracer.events, 1), tracer.header
        )
        assert cut["coflows"] == full["coflows"]
        assert cut["cct_seconds"] == full["cct_seconds"]

    def test_epochless_trace_is_not_flagged(self):
        tracer = Tracer()
        _run(tracer)
        events = [e for e in tracer.events if e["kind"] != "epoch"]
        s = summarize_trace(events, tracer.header)
        assert s["epochs"]["truncated"] is False
