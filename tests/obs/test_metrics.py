"""Unit tests for the dependency-free metrics registry."""

import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge()
        g.set(4.0)
        g.inc(-1.5)
        assert g.value == 2.5

    def test_histogram_buckets(self):
        h = Histogram(buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.cumulative() == [1, 2, 3, 4]
        assert h.n == 4
        assert h.total == 555.5

    def test_histogram_quantile(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        assert math.isnan(Histogram().quantile(0.5))
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))


class TestRegistry:
    def test_identity_by_name_and_labels(self):
        m = MetricsRegistry()
        a = m.counter("reqs", labels={"code": "200"})
        b = m.counter("reqs", labels={"code": "500"})
        c = m.counter("reqs", labels={"code": "200"})
        assert a is c and a is not b

    def test_kind_conflict_raises(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(ValueError):
            m.gauge("x")

    def test_families_sorted(self):
        m = MetricsRegistry()
        m.gauge("b")
        m.counter("a")
        assert [name for name, *_ in m.families()] == ["a", "b"]


class TestPrometheusText:
    def test_counter_and_gauge_lines(self):
        m = MetricsRegistry()
        m.counter("epochs_total", "epochs").inc(3)
        m.gauge("sim_time_seconds", "clock").set(1.25)
        text = render_prometheus(m)
        assert "# HELP epochs_total epochs" in text
        assert "# TYPE epochs_total counter" in text
        assert "epochs_total 3" in text
        assert "sim_time_seconds 1.25" in text

    def test_labels_rendered_sorted(self):
        m = MetricsRegistry()
        m.counter("busy", labels={"port": "3", "dir": "send"}).inc()
        assert 'busy{dir="send",port="3"} 1' in render_prometheus(m)

    def test_histogram_exposition(self):
        m = MetricsRegistry()
        h = m.histogram("cct", "cct", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(m)
        assert 'cct_bucket{le="1"} 1' in text
        assert 'cct_bucket{le="10"} 2' in text
        assert 'cct_bucket{le="+Inf"} 2' in text
        assert "cct_sum 5.5" in text
        assert "cct_count 2" in text
