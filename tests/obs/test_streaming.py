"""StreamingTracer: incremental JSONL flushes, byte-identical output."""

import pytest

from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.network.schedulers import make_scheduler
from repro.obs import StreamingTracer, Tracer, read_jsonl, write_jsonl


def _coflows():
    return [
        Coflow([Flow(0, 1, 4.0), Flow(1, 2, 2.0)], 0.0, coflow_id=0,
               name="alpha"),
        Coflow([Flow(2, 0, 3.0)], 1.0, coflow_id=1),
    ]


def _run(tracer):
    sim = CoflowSimulator(
        Fabric(n_ports=3, rate=1.0),
        make_scheduler("sebf"),
        instrumentation=tracer,
    )
    return sim.run(_coflows())


HEADER = {"seed": 1, "scheduler": "sebf"}


class TestByteIdentity:
    def test_matches_write_jsonl_of_a_buffered_tracer(self, tmp_path):
        buffered = Tracer(header=HEADER)
        _run(buffered)
        reference = tmp_path / "reference.jsonl"
        write_jsonl(reference, buffered.events, buffered.header)

        streamed_path = tmp_path / "streamed.jsonl"
        streaming = StreamingTracer(
            streamed_path, flush_every=3, header=HEADER
        )
        _run(streaming)
        streaming.close()

        assert streamed_path.read_bytes() == reference.read_bytes()

    def test_flush_every_one(self, tmp_path):
        path = tmp_path / "eager.jsonl"
        tracer = StreamingTracer(path, flush_every=1, header=HEADER)
        _run(tracer)
        # Every event already hit the disk; close() has nothing to add.
        before = path.read_bytes()
        tracer.close()
        assert path.read_bytes() == before


class TestLifecycle:
    def test_close_drains_ram_and_counts_events(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        tracer = StreamingTracer(path, flush_every=10**6, header=HEADER)
        _run(tracer)
        assert tracer.events  # tail still buffered (flush never hit)
        tracer.close()
        assert tracer.events == []
        header, events = read_jsonl(path)
        assert header == HEADER
        assert tracer.events_written == len(events)
        kinds = {e["kind"] for e in events}
        assert "coflow_complete" in kinds

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = StreamingTracer(path, header=HEADER)
        _run(tracer)
        tracer.close()
        size = path.stat().st_size
        tracer.close()
        assert path.stat().st_size == size

    def test_metrics_survive_flushes(self, tmp_path):
        tracer = StreamingTracer(
            tmp_path / "m.jsonl", flush_every=1, header=HEADER
        )
        _run(tracer)
        tracer.close()
        completed = sum(
            inst.value
            for name, _kind, _help, family in tracer.metrics.families()
            if name == "coflows_completed_total"
            for _labels, inst in family.items()
        )
        assert completed == len(_coflows())

    def test_rejects_nonpositive_flush_every(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            StreamingTracer(tmp_path / "x.jsonl", flush_every=0)
