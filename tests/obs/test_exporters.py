"""Exporter format tests: JSONL round-trip, Chrome trace shape, Prometheus."""

import json

import pytest

from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.schedulers import make_scheduler
from repro.obs import (
    Tracer,
    read_jsonl,
    repro_header,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
    write_trace,
)


def _trace(**kwargs):
    tracer = Tracer(header=repro_header(scheduler="sebf", seed=3))
    sim = CoflowSimulator(
        Fabric(n_ports=3, rate=1.0),
        make_scheduler("sebf"),
        instrumentation=tracer,
        **kwargs,
    )
    sim.run(
        [
            Coflow([Flow(0, 1, 4.0), Flow(1, 2, 2.0)], 0.0, coflow_id=0,
                   name="alpha"),
            Coflow([Flow(2, 0, 3.0)], 1.0, coflow_id=1),
        ]
    )
    return tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _trace()
        path = tmp_path / "run.jsonl"
        n = write_jsonl(path, tracer.events, tracer.header)
        assert n == len(tracer.events) + 1  # + header line
        header, events = read_jsonl(path)
        assert header["scheduler"] == "sebf"
        assert header["seed"] == 3
        assert events == tracer.events

    def test_header_is_first_line(self, tmp_path):
        tracer = _trace()
        path = tmp_path / "run.jsonl"
        write_jsonl(path, tracer.events, tracer.header)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["package"] == "repro"

    def test_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "epoch", "t": 0}\nnot json\n')
        with pytest.raises(ValueError, match="not JSON"):
            read_jsonl(bad)
        bad.write_text('["list", "record"]\n')
        with pytest.raises(ValueError, match="not a trace record"):
            read_jsonl(bad)

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.jsonl"
        p.write_text('{"kind": "header", "seed": 1}\n\n{"kind": "run_end", "t": 1.0}\n')
        header, events = read_jsonl(p)
        assert header == {"seed": 1}
        assert len(events) == 1


class TestChromeTrace:
    def test_event_shape(self):
        tracer = _trace()
        doc = to_chrome_trace(tracer.events, tracer.header)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["scheduler"] == "sebf"
        events = doc["traceEvents"]
        assert events
        for e in events:
            # the trace_event viewer's required keys
            assert {"name", "ph", "ts", "pid", "tid"} <= set(e)
            assert e["ph"] in ("X", "C", "i", "M")
            if e["ph"] == "X":
                assert e["dur"] >= 0
            if e["ph"] == "i":
                assert e["s"] in ("g", "t", "p")
        json.dumps(doc)  # fully serializable

    def test_coflow_spans(self):
        tracer = _trace()
        doc = to_chrome_trace(tracer.events)
        spans = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "coflow"
        ]
        assert {e["name"] for e in spans} == {"alpha", "cf1"}
        alpha = next(e for e in spans if e["name"] == "alpha")
        complete = next(
            e for e in tracer.events
            if e["kind"] == "coflow_complete" and e["cid"] == 0
        )
        assert alpha["ts"] + alpha["dur"] == pytest.approx(
            complete["t"] * 1e6
        )

    def test_port_gantt_rows(self):
        tracer = _trace()
        doc = to_chrome_trace(tracer.events)
        ports = [
            e for e in doc["traceEvents"] if e.get("cat") == "port"
        ]
        assert ports
        assert all(e["pid"] == 2 for e in ports)
        assert {e["tid"] for e in ports} <= {0, 1, 2}

    def test_abort_marked(self):
        tracer = _trace(
            dynamics=FabricDynamics([RateEvent.failure(0.5, 0)]),
            recovery="abort",
        )
        doc = to_chrome_trace(tracer.events)
        names = [e["name"] for e in doc["traceEvents"]]
        assert any(n.endswith("[aborted]") for n in names)
        assert any(
            e.get("cat") == "failure" and e["ph"] == "i"
            for e in doc["traceEvents"]
        )

    def test_unfinished_coflows_flushed(self):
        events = [
            {"kind": "coflow_submit", "t": 0.0, "cid": 5, "arrival": 0.0,
             "volume": 1.0, "width": 1, "name": "late"},
            {"kind": "coflow_admit", "t": 0.0, "cid": 5},
        ]
        doc = to_chrome_trace(events)
        assert any(
            e["name"] == "late [unfinished]" for e in doc["traceEvents"]
        )

    def test_write_returns_count(self, tmp_path):
        tracer = _trace()
        path = tmp_path / "t.json"
        n = write_chrome_trace(path, tracer.events, tracer.header)
        doc = json.loads(path.read_text())
        assert n == len(doc["traceEvents"])


class TestPrometheus:
    def test_dump_with_header_preamble(self, tmp_path):
        tracer = _trace()
        path = tmp_path / "m.prom"
        write_prometheus(path, tracer.metrics, tracer.header)
        text = path.read_text()
        assert text.startswith("# ")
        assert '# scheduler: "sebf"' in text
        assert "coflows_completed_total 2" in text
        assert "cct_seconds_count 2" in text
        assert 'port_busy_seconds_total{' in text


class TestWriteTrace:
    @pytest.mark.parametrize("fmt", ["jsonl", "chrome", "prom"])
    def test_dispatch(self, tmp_path, fmt):
        tracer = _trace()
        path = tmp_path / f"out.{fmt}"
        assert write_trace(tracer, path, fmt) > 0
        assert path.exists()

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            write_trace(_trace(), tmp_path / "x", "xml")
