"""Tracer lifecycle semantics + simulator wiring of the event stream."""

from repro.network import Coflow, CoflowSimulator, Fabric, Flow
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.schedulers import make_scheduler
from repro.obs import Instrumentation, MultiInstrumentation, Tracer


def _coflows():
    return [
        Coflow([Flow(0, 1, 4.0), Flow(1, 2, 2.0)], 0.0, coflow_id=0,
               name="alpha"),
        Coflow([Flow(2, 0, 3.0)], 1.0, coflow_id=1),
    ]


def _run(tracer, coflows=None, **kwargs):
    sim = CoflowSimulator(
        Fabric(n_ports=3, rate=1.0),
        make_scheduler("sebf"),
        instrumentation=tracer,
        **kwargs,
    )
    return sim.run(coflows if coflows is not None else _coflows())


class TestNoOpBase:
    def test_base_is_disabled(self):
        obs = Instrumentation()
        assert not obs.enabled
        assert not obs.wants_flow_events
        assert not obs.wants_port_samples

    def test_all_hooks_are_noops(self):
        obs = Instrumentation()
        obs.run_start(time=0.0, n_coflows=1, total_bytes=1.0)
        obs.coflow_submit(0, time=0.0, arrival=0.0, volume=1.0, width=1)
        obs.coflow_admit(0, time=0.0)
        obs.coflow_first_byte(0, time=0.0)
        obs.coflow_complete(0, time=1.0, cct=1.0)
        obs.coflow_abort(0, time=1.0)
        obs.epoch(start=0.0, duration=1.0, active_flows=1, aggregate_rate=1.0)
        obs.planner_phase("s", time=0.0, wall_s=0.1)
        obs.stage_attempt("s", 1, start=0.0, end=1.0, status="completed")
        obs.close()

    def test_disabled_sink_not_stored(self):
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0),
            make_scheduler("fair"),
            instrumentation=Instrumentation(),
        )
        assert sim.instrumentation is None


class TestTracerLifecycle:
    def test_event_ordering(self):
        tracer = Tracer()
        _run(tracer)
        kinds = [e["kind"] for e in tracer.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        # submit precedes admit precedes first_byte precedes complete
        for cid in (0, 1):
            order = [
                next(
                    i for i, e in enumerate(tracer.events)
                    if e["kind"] == k and e.get("cid") == cid
                )
                for k in ("coflow_submit", "coflow_admit",
                          "coflow_first_byte", "coflow_complete")
            ]
            assert order == sorted(order)

    def test_submit_carries_identity(self):
        tracer = Tracer()
        _run(tracer)
        sub = {
            e["cid"]: e for e in tracer.events if e["kind"] == "coflow_submit"
        }
        assert sub[0]["name"] == "alpha"
        assert sub[0]["volume"] == 6.0
        assert sub[0]["width"] == 2
        assert sub[1]["arrival"] == 1.0

    def test_first_byte_emitted_once(self):
        tracer = Tracer()
        _run(tracer)
        fb = [e for e in tracer.events if e["kind"] == "coflow_first_byte"]
        assert sorted(e["cid"] for e in fb) == [0, 1]

    def test_cct_matches_result(self):
        tracer = Tracer()
        res = _run(tracer)
        done = {
            e["cid"]: e["cct"]
            for e in tracer.events
            if e["kind"] == "coflow_complete"
        }
        assert done == res.ccts

    def test_epoch_samples_have_port_busy(self):
        tracer = Tracer(sample_ports=True)
        _run(tracer)
        epochs = [e for e in tracer.events if e["kind"] == "epoch"]
        assert epochs
        for e in epochs:
            assert len(e["port_busy_send"]) == 3
            assert len(e["port_busy_recv"]) == 3
            assert e["dur"] >= 0.0
            assert "residual" in e and "queue" in e and "coflows" in e

    def test_sample_ports_off(self):
        tracer = Tracer(sample_ports=False)
        _run(tracer)
        epochs = [e for e in tracer.events if e["kind"] == "epoch"]
        assert epochs
        assert all("port_busy_send" not in e for e in epochs)

    def test_metrics_updated(self):
        tracer = Tracer()
        res = _run(tracer)
        m = tracer.metrics
        assert m.counter("coflows_submitted_total").value == 2
        assert m.counter("coflows_completed_total").value == 2
        # n_epochs counts every loop iteration; samples cover only the
        # flow-advancing ones (idle arrival waits emit nothing).
        sampled = sum(1 for e in tracer.events if e["kind"] == "epoch")
        assert m.counter("epochs_total").value == sampled <= res.n_epochs
        assert m.histogram("cct_seconds").n == 2
        assert m.gauge("sim_time_seconds").value == res.makespan

    def test_failure_and_abort_events(self):
        tracer = Tracer()
        dynamics = FabricDynamics([RateEvent.failure(0.5, 0)])
        res = _run(tracer, dynamics=dynamics, recovery="abort")
        kinds = {e["kind"] for e in tracer.events}
        assert "failure" in kinds and "coflow_abort" in kinds
        aborted = {
            e["cid"] for e in tracer.events if e["kind"] == "coflow_abort"
        }
        assert aborted == set(res.failed_coflows)
        assert tracer.metrics.counter("coflows_aborted_total").value == len(
            aborted
        )
        assert tracer.metrics.counter("port_failures_total").value >= 1

    def test_header_stored(self):
        tracer = Tracer(header={"seed": 7})
        assert tracer.header == {"seed": 7}


class TestMultiInstrumentation:
    def test_fans_out_and_ors_flags(self):
        a, b = Tracer(sample_ports=False), Tracer(sample_ports=True)
        multi = MultiInstrumentation([a, b, None])
        assert multi.enabled
        assert multi.wants_flow_events
        assert multi.wants_port_samples
        _run(multi)
        assert [e["kind"] for e in a.events] == [e["kind"] for e in b.events]

    def test_detail_computed_once_and_shared(self):
        calls = []

        class Probe(Instrumentation):
            enabled = True
            wants_port_samples = True

            def epoch(self, *, detail=None, **kw):
                if detail is not None:
                    calls.append(detail())

        p1, p2 = Probe(), Probe()
        multi = MultiInstrumentation([p1, p2])
        counted = []

        def detail():
            counted.append(1)
            return {"coflows": 1}

        multi.epoch(
            start=0.0, duration=1.0, active_flows=1, aggregate_rate=1.0,
            detail=detail,
        )
        assert len(counted) == 1  # computed once
        assert len(calls) == 2  # both sinks saw it
        assert calls[0] is calls[1]

    def test_all_disabled_children(self):
        multi = MultiInstrumentation([Instrumentation()])
        assert not multi.enabled


class TestTimelineUnification:
    def test_timeline_and_tracer_coexist(self):
        tracer = Tracer()
        res = _run(tracer, record_timeline=True)
        epochs = [e for e in tracer.events if e["kind"] == "epoch"]
        assert len(res.epochs) == len(epochs) <= res.n_epochs
        for rec, ev in zip(res.epochs, epochs):
            assert rec.start == ev["t"]
            assert rec.duration == ev["dur"]
            assert rec.active_flows == ev["flows"]
            assert rec.aggregate_rate == ev["rate"]

    def test_timeline_without_tracer(self):
        sim = CoflowSimulator(
            Fabric(n_ports=3, rate=1.0),
            make_scheduler("sebf"),
            record_timeline=True,
        )
        res = sim.run(_coflows())
        assert res.epochs and len(res.epochs) <= res.n_epochs

    def test_no_timeline_by_default(self):
        res = _run(Tracer())
        assert res.epochs == [] and res.n_epochs > 0
