"""MSER-style warm-up truncation + the admission section of ccf stats."""

import numpy as np
import pytest

from repro.obs import steady_state_stats, summarize_trace


def stationary(n=200, level=10.0, seed=0):
    rng = np.random.default_rng(seed)
    return [(float(t), level + float(rng.normal(0, 0.1)))
            for t in range(n)]


class TestSteadyStateStats:
    def test_too_few_samples_is_none(self):
        samples = [(float(t), 1.0) for t in range(39)]
        assert steady_state_stats(samples, min_samples=40) is None
        # The 2*batches floor binds even when min_samples is tiny.
        assert steady_state_stats(samples, batches=20, min_samples=1) is None

    def test_constant_stream_keeps_everything(self):
        # Identical batch means: no cut lowers the SEM, so the earliest
        # candidate (no warm-up at all) wins.
        samples = [(float(t), 10.0) for t in range(200)]
        out = steady_state_stats(samples)
        assert out is not None
        assert out["warmup_samples"] == 0
        assert out["warmup_s"] == 0.0
        assert out["samples"] == 200
        assert out["p50"] == 10.0

    def test_noisy_stationary_stream_keeps_most(self):
        out = steady_state_stats(stationary())
        assert out is not None
        # Noise may nudge the cut off zero, but never past halfway.
        assert out["warmup_samples"] <= 100
        assert out["p50"] == pytest.approx(10.0, abs=0.2)

    def test_transient_is_cut(self):
        # An open-loop ramp: the first quarter of the run is
        # unrepresentatively fast, then the stream settles high.
        warm = [(float(t), 0.1 * t) for t in range(50)]
        steady = stationary(150, level=10.0)
        steady = [(50.0 + t, v) for t, v in steady]
        out = steady_state_stats(warm + steady)
        assert out is not None
        assert out["warmup_samples"] > 0
        assert out["warmup_s"] > 0.0
        # The retained window reflects steady state, not the ramp.
        assert out["p50"] == pytest.approx(10.0, abs=0.5)
        overall_p50 = float(
            np.percentile([v for _, v in warm + steady], 50)
        )
        assert out["warmup_samples"] <= len(warm + steady) // 2
        assert out["p50"] >= overall_p50

    def test_unsorted_input_is_ordered_by_time(self):
        samples = stationary(100)
        shuffled = list(reversed(samples))
        assert steady_state_stats(shuffled) == steady_state_stats(samples)

    def test_deterministic(self):
        samples = stationary(120, seed=3)
        assert steady_state_stats(samples) == steady_state_stats(samples)


def admission_event(decision, *, volume=0.0, policy="load-shedding"):
    return {
        "kind": "admission",
        "t": 0.0,
        "decision": decision,
        "reason": "",
        "policy": policy,
        "volume": volume,
    }


class TestAdmissionSection:
    def test_batch_traces_have_no_section(self):
        s = summarize_trace([{"kind": "coflow_complete", "t": 1.0,
                              "cid": 0, "cct": 1.0}])
        assert s["admission"] is None

    def test_counts_decisions_and_shed_bytes(self):
        events = (
            [admission_event("admit")] * 6
            + [admission_event("defer")] * 2
            + [admission_event("shed", volume=100.0)] * 2
        )
        s = summarize_trace(events)
        adm = s["admission"]
        assert adm["policy"] == "load-shedding"
        assert adm["decisions"] == {"admit": 6, "defer": 2, "shed": 2}
        assert adm["shed_fraction"] == pytest.approx(0.2)
        assert adm["shed_bytes"] == pytest.approx(200.0)
