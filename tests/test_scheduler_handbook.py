"""Drift test: docs/algorithms.md must cover every registered scheduler.

Same contract as ``tests/experiments/test_catalog.py`` for the
experiment catalog: the handbook's "scheduler zoo" part carries one
``### `name` `` section per entry of the scheduler registry, so adding a
discipline without documenting it (or documenting a ghost) fails CI.
"""

import re
from pathlib import Path

from repro.network.schedulers import SCHEDULER_NAMES, make_scheduler

HANDBOOK = Path(__file__).resolve().parents[1] / "docs" / "algorithms.md"

#: A zoo section heading: ``### `name` `` with a backticked registry name.
SECTION_RE = re.compile(r"^###\s+`([a-z0-9]+)`\s*$")

#: Every section must state these facets (the handbook's contract).
REQUIRED_FACETS = ("Objective", "Guarantee", "Complexity", "Horizon", "Citation")


def _zoo_sections() -> dict[str, str]:
    """Map section name -> section body text."""
    sections: dict[str, str] = {}
    current: str | None = None
    for line in HANDBOOK.read_text().splitlines():
        m = SECTION_RE.match(line)
        if m:
            current = m.group(1)
            sections[current] = ""
        elif line.startswith("#"):
            current = None
        elif current is not None:
            sections[current] += line + "\n"
    return sections


def test_handbook_exists():
    assert HANDBOOK.is_file(), "docs/algorithms.md is missing"


def test_every_registered_scheduler_has_a_section():
    documented = set(_zoo_sections())
    missing = set(SCHEDULER_NAMES) - documented
    assert not missing, f"schedulers missing from docs/algorithms.md: {sorted(missing)}"


def test_every_section_is_a_registered_scheduler():
    ghosts = set(_zoo_sections()) - set(SCHEDULER_NAMES)
    assert not ghosts, f"docs/algorithms.md documents unknown schedulers: {sorted(ghosts)}"


def test_every_section_states_the_required_facets():
    for name, body in _zoo_sections().items():
        for facet in REQUIRED_FACETS:
            assert f"**{facet}**" in body, (
                f"docs/algorithms.md section for {name!r} lacks **{facet}**"
            )


def test_horizon_claims_match_the_code():
    """The documented horizon keyword must match rates_valid_until."""
    import numpy as np

    from repro.network.events import SchedulingContext
    from repro.network.fabric import Fabric

    ctx = SchedulingContext(
        time=7.25,
        fabric=Fabric(n_ports=2, rate=1.0),
        srcs=np.array([0], dtype=np.int64),
        dsts=np.array([1], dtype=np.int64),
        remaining=np.array([1.0]),
        coflow_ids=np.array([0], dtype=np.int64),
    )
    sections = _zoo_sections()
    for name in SCHEDULER_NAMES:
        sched = make_scheduler(name)
        rates = np.zeros(1)
        horizon = sched.rates_valid_until(ctx, rates)
        body = sections[name]
        if horizon == np.inf:
            assert "`inf`" in body, f"{name}: code says inf, doc disagrees"
        else:
            assert horizon == ctx.time, f"{name}: unexpected horizon {horizon}"
            assert "`ctx.time`" in body, (
                f"{name}: code says ctx.time, doc disagrees"
            )
