"""Tests for analytical jobs and the job executor."""

import numpy as np
import pytest

from repro.analytics.executor import JobExecutor
from repro.analytics.query import AnalyticalJob
from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.join.operators import DistributedAggregation, DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


@pytest.fixture(scope="module")
def job():
    cfg = TPCHConfig(n_nodes=4, scale_factor=0.002, seed=2)
    customer, orders = generate_tpch_relations(cfg)
    join = DistributedJoin(customer, orders, partitioner=HashPartitioner(20))
    agg = DistributedAggregation(orders, partitioner=HashPartitioner(20))
    return AnalyticalJob(name="q").add(join, "join").add(agg, "aggregate")


class TestAnalyticalJob:
    def test_fluent_add(self, job):
        assert len(job) == 2
        assert [s.name for s in job] == ["join", "aggregate"]

    def test_default_stage_names(self):
        m = ShuffleModel(h=np.ones((2, 2)), rate=1.0)
        j = AnalyticalJob().add(m)
        assert j.stages[0].name == "stage0"


class TestJobExecutor:
    def test_closed_form_total_is_sum_of_stage_ccts(self, job):
        result = JobExecutor().run(job, strategy="ccf")
        assert result.total_communication_seconds == pytest.approx(
            sum(s.communication_seconds for s in result.stages)
        )
        assert result.total_traffic == pytest.approx(
            sum(s.plan.traffic for s in result.stages)
        )

    def test_ccf_not_slower_than_baselines(self, job):
        ex = JobExecutor()
        t = {
            s: ex.run(job, strategy=s).total_communication_seconds
            for s in ("hash", "mini", "ccf")
        }
        assert t["ccf"] <= t["hash"] + 1e-9
        assert t["ccf"] <= t["mini"] + 1e-9

    def test_simulated_matches_closed_form_under_sebf(self, job):
        ex = JobExecutor(scheduler="sebf")
        closed = ex.run(job, strategy="ccf", simulate=False)
        simulated = ex.run(job, strategy="ccf", simulate=True)
        assert simulated.total_communication_seconds == pytest.approx(
            closed.total_communication_seconds, rel=1e-6
        )

    def test_fair_sharing_not_faster_than_optimal(self, job):
        closed = JobExecutor().run(job, strategy="ccf")
        fair = JobExecutor(scheduler="fair").run(job, strategy="ccf", simulate=True)
        assert (
            fair.total_communication_seconds
            >= closed.total_communication_seconds - 1e-9
        )

    def test_custom_ccf_instance(self, job):
        ex = JobExecutor(CCF(skew_handling=False))
        result = ex.run(job, strategy="ccf")
        assert result.strategy == "ccf"
        assert len(result.stages) == 2
