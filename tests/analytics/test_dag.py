"""Tests for DAG-structured job execution (dynamic coflow injection)."""

import numpy as np
import pytest

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.core.model import ShuffleModel
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def model(volume=8.0, n=4, src=0, dst=None, rate=1.0):
    """A stage with a fixed point-to-point transfer (planner-independent).

    Modeled as an initial flow so the stage's duration is exactly
    ``volume / rate`` whatever the strategy -- ideal for timing tests.
    """
    if dst is None:
        dst = (src + 1) % n
    v0 = np.zeros((n, n))
    v0[src, dst] = volume
    return ShuffleModel(h=np.zeros((n, 0)), v0=v0, rate=rate)


class TestInjection:
    def test_injected_coflow_runs(self):
        fab = Fabric(n_ports=3, rate=1.0)
        first = Coflow([Flow(0, 1, 4.0)], coflow_id=0)

        def injector(cid, now):
            if cid == 0:
                return [Coflow([Flow(1, 2, 2.0)], arrival_time=now, coflow_id=1)]
            return []

        res = CoflowSimulator(fab, make_scheduler("sebf")).run(
            [first], injector=injector
        )
        assert res.completion_times[0] == pytest.approx(4.0)
        assert res.completion_times[1] == pytest.approx(6.0)
        assert res.total_bytes == pytest.approx(6.0)

    def test_chained_injection(self):
        fab = Fabric(n_ports=2, rate=1.0)
        first = Coflow([Flow(0, 1, 1.0)], coflow_id=0)

        def injector(cid, now):
            if cid < 3:
                return [
                    Coflow([Flow(0, 1, 1.0)], arrival_time=now, coflow_id=cid + 1)
                ]
            return []

        res = CoflowSimulator(fab, make_scheduler("sebf")).run(
            [first], injector=injector
        )
        assert len(res.completion_times) == 4
        assert res.makespan == pytest.approx(4.0)

    def test_duplicate_injected_id_rejected(self):
        fab = Fabric(n_ports=2, rate=1.0)
        first = Coflow([Flow(0, 1, 1.0)], coflow_id=0)

        def injector(cid, now):
            return [Coflow([Flow(0, 1, 1.0)], arrival_time=now, coflow_id=0)]

        with pytest.raises(ValueError, match="fresh"):
            CoflowSimulator(fab, make_scheduler("sebf")).run(
                [first], injector=injector
            )

    def test_past_arrival_rejected(self):
        fab = Fabric(n_ports=2, rate=1.0)
        first = Coflow([Flow(0, 1, 5.0)], coflow_id=0)

        def injector(cid, now):
            return [Coflow([Flow(0, 1, 1.0)], arrival_time=0.0, coflow_id=1)]

        with pytest.raises(ValueError, match="past"):
            CoflowSimulator(fab, make_scheduler("sebf")).run(
                [first], injector=injector
            )


class TestJobDAG:
    def test_parents_must_exist(self):
        dag = JobDAG()
        with pytest.raises(ValueError, match="unknown parent"):
            dag.add("b", model(), parents=("a",))

    def test_duplicate_stage_rejected(self):
        dag = JobDAG().add("a", model())
        with pytest.raises(ValueError, match="already exists"):
            dag.add("a", model())

    def test_roots_and_children(self):
        dag = (
            JobDAG()
            .add("a", model())
            .add("b", model())
            .add("c", model(), parents=("a", "b"))
        )
        assert set(dag.roots()) == {"a", "b"}
        assert dag.children_of("a") == ["c"]


class TestDAGExecutor:
    def make_diamond(self, rate=1.0):
        # a -> (b, c) -> d; different source nodes so b and c can overlap.
        return (
            JobDAG("diamond")
            .add("a", model(8.0, src=0, rate=rate))
            .add("b", model(8.0, src=1, rate=rate), parents=("a",))
            .add("c", model(8.0, src=2, rate=rate), parents=("a",))
            .add("d", model(8.0, src=3, rate=rate), parents=("b", "c"))
        )

    def test_dependencies_respected(self):
        result = DAGExecutor().run(self.make_diamond())
        s = result.stages
        assert s["b"].start_time >= s["a"].completion_time - 1e-9
        assert s["c"].start_time >= s["a"].completion_time - 1e-9
        assert s["d"].start_time >= max(
            s["b"].completion_time, s["c"].completion_time
        ) - 1e-9

    def test_parallel_stages_overlap(self):
        result = DAGExecutor().run(self.make_diamond())
        s = result.stages
        # b and c run concurrently (disjoint ports): same window.
        overlap = min(
            s["b"].completion_time, s["c"].completion_time
        ) - max(s["b"].start_time, s["c"].start_time)
        assert overlap > 0

    def test_makespan_beats_sequential_sum(self):
        result = DAGExecutor().run(self.make_diamond())
        seq = sum(st.duration for st in result.stages.values())
        assert result.makespan < seq

    def test_empty_dag(self):
        result = DAGExecutor().run(JobDAG("empty"))
        assert result.makespan == 0.0

    def test_strategies_produce_same_structure(self):
        for strategy in ("hash", "ccf"):
            result = DAGExecutor().run(self.make_diamond(), strategy=strategy)
            assert set(result.stages) == {"a", "b", "c", "d"}
            assert result.strategy == strategy

    def test_critical_path_nonempty(self):
        result = DAGExecutor().run(self.make_diamond())
        assert result.critical_path()
