"""Tests for the query compiler: estimation, ordering, execution."""

import numpy as np
import pytest

from repro.analytics.catalog import Catalog
from repro.analytics.compile import QueryExecutor, estimate, optimize_joins
from repro.analytics.logical import (
    Distinct,
    EquiJoin,
    Filter,
    GroupByKey,
    Scan,
)
from repro.analytics.queries import (
    active_customer_orders,
    build_tpch_catalog,
    distinct_buyers,
    orders_per_customer,
)
from repro.join.local import join_cardinality
from repro.join.relation import DistributedRelation
from repro.workloads.tpch import TPCHConfig


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(
        TPCHConfig(n_nodes=4, scale_factor=0.002, skew=0.2, seed=6)
    )


class TestCatalog:
    def test_stats(self, catalog):
        s = catalog.stats("customer")
        assert s.rows == 300
        assert s.distinct_keys == 300
        assert s.rows_per_key == pytest.approx(1.0)

    def test_duplicate_registration_rejected(self, catalog):
        with pytest.raises(ValueError, match="already"):
            catalog.register("customer", catalog.relation("orders"))

    def test_unknown_table(self, catalog):
        with pytest.raises(ValueError, match="unknown table"):
            catalog.relation("nation")

    def test_node_count_consistency(self):
        cat = Catalog()
        cat.register("a", DistributedRelation(shards=[np.array([1])]))
        with pytest.raises(ValueError, match="nodes"):
            cat.register(
                "b",
                DistributedRelation(shards=[np.array([1]), np.array([2])]),
            )

    def test_empty_catalog(self):
        with pytest.raises(ValueError, match="empty"):
            Catalog().n_nodes


class TestEstimation:
    def test_scan(self, catalog):
        assert estimate(Scan("orders"), catalog).rows == 3000

    def test_filter_scales(self, catalog):
        plan = Filter(Scan("orders"), predicate=lambda k: k > 0,
                      selectivity=0.25)
        assert estimate(plan, catalog).rows == 750

    def test_join_formula(self, catalog):
        plan = EquiJoin(Scan("customer"), Scan("orders"))
        got = estimate(plan, catalog)
        c = catalog.stats("customer")
        o = catalog.stats("orders")
        expected = round(c.rows * o.rows / max(c.distinct_keys, o.distinct_keys))
        assert got.rows == expected

    def test_groupby_outputs_distinct(self, catalog):
        plan = GroupByKey(Scan("orders"))
        assert estimate(plan, catalog).rows == catalog.stats("orders").distinct_keys

    def test_filter_selectivity_validation(self):
        with pytest.raises(ValueError, match="selectivity"):
            Filter(Scan("x"), predicate=lambda k: k > 0, selectivity=2.0)


class TestJoinOrdering:
    def test_smallest_input_joins_first(self, catalog):
        # orders (3000 rows) joined before customer (300) -> reordered.
        plan = EquiJoin(Scan("orders"), Scan("customer"))
        opt = optimize_joins(plan, catalog)
        assert isinstance(opt.left, Scan) and opt.left.table == "customer"

    def test_three_way_flattening(self, catalog):
        plan = EquiJoin(
            EquiJoin(Scan("orders"), Scan("orders")), Scan("customer")
        )
        opt = optimize_joins(plan, catalog)
        # Left-deep with customer (smallest) first.
        assert isinstance(opt, EquiJoin)
        assert isinstance(opt.left, EquiJoin)
        assert opt.left.left == Scan("customer")

    def test_recurses_below_nonjoin_nodes(self, catalog):
        plan = GroupByKey(EquiJoin(Scan("orders"), Scan("customer")))
        opt = optimize_joins(plan, catalog)
        assert isinstance(opt, GroupByKey)
        assert opt.child.left == Scan("customer")

    def test_describe_renders_tree(self):
        text = orders_per_customer().describe()
        assert "GroupByKey" in text and "Scan(customer)" in text


class TestExecution:
    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_join_query_correct_under_all_strategies(self, catalog, strategy):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        plan = EquiJoin(Scan("customer"), Scan("orders"))
        result = ex.execute(plan, strategy=strategy)
        expected = join_cardinality(
            catalog.relation("customer").all_keys(),
            catalog.relation("orders").all_keys(),
        )
        assert result.rows == expected
        assert len(result.stages) == 1

    def test_groupby_query_matches_centralized(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(orders_per_customer())
        assert result.groups is not None
        # Group counts over the join equal per-key join multiplicities.
        orders = catalog.relation("orders").key_counts()
        cust = catalog.relation("customer").key_counts()
        expected = {
            k: orders[k] * cust[k] for k in orders if k in cust
        }
        assert result.groups == expected

    def test_filter_pushes_locally(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(active_customer_orders(key_modulus=3))
        # Only the join crosses the network; the filter adds no stage.
        # (The filtered dimension may be small enough that the cost-based
        # chooser picks a broadcast join -- still exactly one stage.)
        assert len(result.stages) == 1
        assert result.stages[0].name in ("join", "broadcast-join")
        keys = result.relation.all_keys()
        assert (keys % 3 == 0).all()

    def test_distinct_query(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(distinct_buyers())
        expected = np.unique(catalog.relation("orders").all_keys()).size
        assert result.rows == expected
        # The output relation holds each key exactly once.
        assert result.relation.total_tuples == expected

    def test_ccf_not_slower_than_mini(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        plan = orders_per_customer()
        t = {
            s: ex.execute(plan, strategy=s).total_communication_seconds
            for s in ("mini", "ccf")
        }
        assert t["ccf"] <= t["mini"] + 1e-9

    def test_estimated_rows_recorded(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(EquiJoin(Scan("customer"), Scan("orders")))
        assert result.estimated_rows > 0
        # Uniform FK: the estimate should land near the truth.
        assert result.estimated_rows == pytest.approx(result.rows, rel=0.35)

    def test_optimization_toggle(self, catalog):
        ex = QueryExecutor(catalog, optimize=False, skew_factor=50.0)
        result = ex.execute(EquiJoin(Scan("orders"), Scan("customer")))
        expected = join_cardinality(
            catalog.relation("customer").all_keys(),
            catalog.relation("orders").all_keys(),
        )
        assert result.rows == expected
