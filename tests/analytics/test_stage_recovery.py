"""Job-level fault tolerance: stage policies on the DAG/job executors.

Covers the acceptance scenario of the fault-tolerance tentpole: a DAG
run with an injected node failure under ``replan-stage`` completes with
the full volume delivered, re-executes only the failed stage, and
reports per-stage retry records; the same scenario under ``fail-job``
reports a failed job instead of raising.
"""

import math

import numpy as np
import pytest

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.analytics.executor import JobExecutor
from repro.analytics.query import AnalyticalJob
from repro.analytics.stagepolicy import (
    FailJobPolicy,
    ReplanStagePolicy,
    RetryStagePolicy,
    make_stage_policy,
)
from repro.core.model import ShuffleModel
from repro.core.online import OnlineCCF
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric

N = 4
FAIL_AT = 2.0
DEAD = 3


def shuffle(seed, p=6):
    """A dense shuffle model: every node holds a piece of every partition."""
    rng = np.random.default_rng(seed)
    return ShuffleModel(h=rng.integers(1, 10, size=(N, p)).astype(float), rate=1.0)


def diamond():
    """a, b -> c -> d.  Stage ``a`` is pinned to place partitions on the
    doomed node; ``b`` is pinned to avoid it, so exactly one root stage is
    hit by the failure and "only the failed subtree re-executes" is
    observable."""
    return (
        JobDAG("diamond")
        .add("a", shuffle(1), dest=np.array([0, 1, 2, 3, 3, 0]))
        .add("b", shuffle(2), dest=np.array([0, 1, 2, 0, 1, 2]))
        .add("c", shuffle(3), parents=("a", "b"))
        .add("d", shuffle(4), parents=("c",))
    )


def ingress_loss(recover_at=None):
    fabric = Fabric(n_ports=N, rate=1.0)
    return FabricDynamics.fail(
        time=FAIL_AT,
        ports=[DEAD],
        fabric=fabric,
        recover_at=recover_at,
        direction="ingress",
    )


class TestStagePolicies:
    def test_registry_and_aliases(self):
        assert isinstance(make_stage_policy("replan"), ReplanStagePolicy)
        assert isinstance(make_stage_policy("retry-stage"), RetryStagePolicy)
        assert isinstance(make_stage_policy("fail"), FailJobPolicy)
        policy = RetryStagePolicy(max_stage_retries=7)
        assert make_stage_policy(policy) is policy

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="fail-job"):
            make_stage_policy("nope")


class TestReplanRecovery:
    def test_acceptance_scenario(self):
        result = DAGExecutor().run(
            diamond(), dynamics=ingress_loss(), stage_policy="replan-stage"
        )
        # The job completes despite the permanent ingress loss.
        assert result.completed
        s = result.stages
        # Only the failed stage re-executes; the rest run once.
        assert s["a"].attempts == 2
        assert s["b"].attempts == 1
        assert s["c"].attempts == 1
        assert s["d"].attempts == 1
        assert result.total_retries == 1
        assert result.total_replans == 1
        # Per-stage retry records: the aborted attempt is logged on the
        # stage that owned it, with a replan decision event.
        assert s["a"].failures and s["a"].bytes_lost > 0
        assert [e.action for e in s["a"].events] == ["replan"]
        assert not s["b"].events and not s["c"].events

    def test_full_volume_delivered_off_dead_node(self):
        result = DAGExecutor().run(
            diamond(), dynamics=ingress_loss(), stage_policy="replan-stage"
        )
        for name, s in result.stages.items():
            sizes = s.plan.model.partition_sizes
            mass = np.bincount(s.plan.dest, weights=sizes, minlength=N)
            assert mass.sum() == pytest.approx(sizes.sum())
            # Every stage planned or replanned after the failure avoids
            # the dead ingress entirely.
            if name != "b":
                assert mass[DEAD] == pytest.approx(0.0)

    def test_makespan_beats_retry(self):
        dyn = ingress_loss(recover_at=60.0)
        replanned = DAGExecutor().run(
            diamond(), dynamics=dyn, stage_policy="replan-stage"
        )
        retried = DAGExecutor().run(
            diamond(), dynamics=dyn, stage_policy="retry-stage"
        )
        assert replanned.completed and retried.completed
        # Replanning routes around the hole now; retrying waits for the
        # repair, so its makespan includes the outage.
        assert retried.makespan >= 60.0
        assert replanned.makespan < retried.makespan

    def test_full_node_loss_degrades_to_retry(self):
        # direction="both" kills the node's resident source data too, so
        # there is nothing to replan from: the policy must fall back to
        # retrying once the node is repaired.
        fabric = Fabric(n_ports=N, rate=1.0)
        dyn = FabricDynamics.fail(
            time=FAIL_AT, ports=[DEAD], fabric=fabric, recover_at=50.0
        )
        result = DAGExecutor().run(
            diamond(), dynamics=dyn, stage_policy="replan-stage"
        )
        assert result.completed
        assert "retry" in [e.action for e in result.events]
        assert result.total_replans == 0
        assert result.makespan >= 50.0


class TestFailJobAndRetry:
    def test_fail_job_reports_instead_of_raising(self):
        result = DAGExecutor().run(
            diamond(), dynamics=ingress_loss(), stage_policy="fail-job"
        )
        assert result.failed and not result.completed
        assert result.failed_stages == ["a"]
        # Descendants of the failed stage never start.
        assert set(result.skipped_stages) == {"c", "d"}
        assert result.stages["c"].plan is None
        assert math.isnan(result.total_retries) is False
        summary = result.failure_summary()
        assert summary["completed"] == 0.0
        assert summary["failed_stages"] == 1

    def test_retry_waits_out_the_outage(self):
        healthy = DAGExecutor().run(diamond())
        result = DAGExecutor().run(
            diamond(),
            dynamics=ingress_loss(recover_at=40.0),
            stage_policy="retry-stage",
        )
        assert result.completed
        assert result.stages["a"].attempts == 2
        assert result.makespan >= 40.0
        assert result.makespan > healthy.makespan

    def test_retry_without_repair_fails_job(self):
        # The retry policy needs the port back; with no repair scheduled
        # the stage can never rerun, so the job must fail cleanly.
        result = DAGExecutor().run(
            diamond(), dynamics=ingress_loss(), stage_policy="retry-stage"
        )
        assert result.failed
        assert "fail-job" in [e.action for e in result.events]


class TestValidation:
    def test_policy_without_failures_rejected(self):
        with pytest.raises(ValueError, match="failure schedule"):
            DAGExecutor().run(diamond(), stage_policy="replan-stage")

    def test_failures_without_policy_rejected(self):
        with pytest.raises(ValueError, match="stage_policy"):
            DAGExecutor().run(diamond(), dynamics=ingress_loss())


class TestJobExecutorRecovery:
    def job(self):
        return (
            AnalyticalJob(name="pipeline")
            .add(shuffle(5), name="map")
            .add(shuffle(6), name="reduce")
        )

    def test_dynamics_require_simulate(self):
        with pytest.raises(ValueError, match="simulate=True"):
            JobExecutor().run(self.job(), dynamics=ingress_loss())

    def test_replan_completes_with_records(self):
        result = JobExecutor().run(
            self.job(),
            simulate=True,
            dynamics=ingress_loss(),
            stage_policy="replan-stage",
        )
        assert result.completed
        assert result.total_retries >= 1
        assert result.bytes_lost > 0
        assert not math.isnan(result.total_communication_seconds)

    def test_fail_job_reports_failure(self):
        result = JobExecutor().run(
            self.job(),
            simulate=True,
            dynamics=ingress_loss(),
            stage_policy="fail-job",
        )
        assert result.failed
        assert math.isnan(result.total_communication_seconds)


class TestOnlineRecovery:
    def split_model(self):
        # p = n partitions, each split across every node: under the hash
        # strategy node DEAD receives partition DEAD, so an ingress loss
        # always strands receive bytes there.
        rng = np.random.default_rng(7)
        return ShuffleModel(h=rng.uniform(5, 10, size=(N, N)), rate=1.0)

    def test_failure_without_policy_rejected(self):
        online = OnlineCCF(n_nodes=N)
        with pytest.raises(ValueError, match="stage_policy"):
            online.node_failed(1.0, DEAD)

    def test_ingress_loss_replans_receive_side(self):
        online = OnlineCCF(n_nodes=N, stage_policy="replan-stage")
        online.submit(self.split_model(), time=0.0, strategy="hash")
        events = online.node_failed(1.0, DEAD, direction="ingress")
        assert [e.kind for e in events] == ["node_failed", "shuffle_replanned"]
        _, recv = online.residual_loads(1.0)
        assert recv[DEAD] == pytest.approx(0.0)
        assert recv.sum() > 0  # bytes moved, not dropped

    def test_full_loss_parks_then_restarts(self):
        online = OnlineCCF(n_nodes=N, stage_policy="replan-stage")
        online.submit(self.split_model(), time=0.0, strategy="hash")
        events = online.node_failed(1.0, DEAD, direction="both")
        assert "shuffle_parked" in [e.kind for e in events]
        assert online.in_flight(1.0) == []
        events = online.node_recovered(2.0, DEAD)
        assert "shuffle_restarted" in [e.kind for e in events]
        assert online.in_flight(2.0)

    def test_fail_job_drops_shuffle(self):
        online = OnlineCCF(n_nodes=N, stage_policy="fail-job")
        online.submit(self.split_model(), time=0.0, strategy="hash")
        events = online.node_failed(1.0, DEAD, direction="ingress")
        assert "shuffle_failed" in [e.kind for e in events]
        assert online.in_flight(1.0) == []

    def test_submissions_avoid_dead_nodes(self):
        online = OnlineCCF(n_nodes=N, stage_policy="replan-stage")
        online.node_failed(1.0, DEAD)
        plan = online.submit(self.split_model(), time=2.0)
        assert DEAD not in plan.dest
