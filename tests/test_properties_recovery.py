"""Property-based tests (hypothesis) on the stage-recovery primitives.

These pin the conservation laws the job-level fault-tolerance layer
leans on: :func:`replan_assignment` keeps surviving placements and puts
every stranded partition's volume on exactly one surviving node;
:func:`lineage_matrix` is row-stochastic so byte mass is conserved when
:func:`remap_chunks` pushes it through descendant chunk matrices; and a
full DAG run under ``replan-stage`` delivers every byte despite a
mid-run ingress loss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analytics.dag import DAGExecutor, JobDAG
from repro.core.model import ShuffleModel
from repro.core.noise import NoisyEstimates
from repro.core.replan import lineage_matrix, remap_chunks, replan_assignment
from repro.network.dynamics import FabricDynamics
from repro.network.fabric import Fabric


@st.composite
def replan_cases(draw, max_n=5, max_p=8):
    """A model, an assignment, and a liveness mask with >=1 survivor."""
    n = draw(st.integers(2, max_n))
    p = draw(st.integers(1, max_p))
    h = draw(
        arrays(dtype=np.int64, shape=(n, p), elements=st.integers(0, 50))
    ).astype(float)
    dest = draw(
        arrays(dtype=np.int64, shape=(p,), elements=st.integers(0, n - 1))
    )
    allowed = draw(
        arrays(dtype=np.bool_, shape=(n,), elements=st.booleans()).filter(
            lambda a: a.any()
        )
    )
    return ShuffleModel(h=h, rate=1.0), dest, allowed


class TestReplanAssignment:
    @given(replan_cases())
    @settings(max_examples=60, deadline=None)
    def test_all_partitions_land_on_survivors(self, case):
        model, dest, allowed = case
        new_dest = replan_assignment(model, dest, allowed)
        assert allowed[new_dest].all()

    @given(replan_cases())
    @settings(max_examples=60, deadline=None)
    def test_surviving_placements_are_checkpoints(self, case):
        # A partition already on a live node must not move: its bytes are
        # committed (checkpoint semantics), only stranded ones re-plan.
        model, dest, allowed = case
        new_dest = replan_assignment(model, dest, allowed)
        kept = allowed[dest]
        np.testing.assert_array_equal(new_dest[kept], dest[kept])

    @given(replan_cases())
    @settings(max_examples=60, deadline=None)
    def test_stranded_volume_reappears_exactly_once(self, case):
        # Byte conservation: each stranded chunk's full volume lands on
        # exactly one surviving destination; dead nodes end with zero
        # destined mass and the total is unchanged.
        model, dest, allowed = case
        new_dest = replan_assignment(model, dest, allowed)
        sizes = model.partition_sizes
        mass = np.bincount(new_dest, weights=sizes, minlength=model.n)
        assert mass[~allowed].sum() == pytest.approx(0.0)
        assert mass.sum() == pytest.approx(sizes.sum())
        stranded = ~allowed[dest]
        for k in np.flatnonzero(stranded):
            assert allowed[new_dest[k]]

    @given(replan_cases())
    @settings(max_examples=40, deadline=None)
    def test_noop_when_nothing_stranded(self, case):
        model, dest, allowed = case
        live = dest.copy()
        survivors = np.flatnonzero(allowed)
        live = survivors[live % survivors.size]  # force all-live placement
        np.testing.assert_array_equal(
            replan_assignment(model, live, allowed), live
        )

    @given(replan_cases())
    @settings(max_examples=40, deadline=None)
    def test_all_dead_rejected(self, case):
        model, dest, _ = case
        with pytest.raises(ValueError, match="surviving"):
            replan_assignment(model, dest, np.zeros(model.n, dtype=bool))


class TestLineage:
    @given(replan_cases())
    @settings(max_examples=60, deadline=None)
    def test_lineage_matrix_is_row_stochastic(self, case):
        model, dest, allowed = case
        new_dest = replan_assignment(model, dest, allowed)
        m = lineage_matrix(model, dest, new_dest)
        np.testing.assert_allclose(m.sum(axis=1), np.ones(model.n))
        assert (m >= 0).all()

    @given(replan_cases())
    @settings(max_examples=60, deadline=None)
    def test_remap_conserves_per_partition_volume(self, case):
        # Pushing a descendant's chunk matrix through the move matrix
        # relocates bytes but never creates or destroys them.
        model, dest, allowed = case
        new_dest = replan_assignment(model, dest, allowed)
        m = lineage_matrix(model, dest, new_dest)
        remapped = remap_chunks(model.h, m)
        np.testing.assert_allclose(
            remapped.sum(axis=0), model.h.sum(axis=0), atol=1e-9
        )
        assert (remapped >= -1e-12).all()

    @given(replan_cases())
    @settings(max_examples=40, deadline=None)
    def test_identity_when_unmoved(self, case):
        model, dest, _ = case
        np.testing.assert_array_equal(
            lineage_matrix(model, dest, dest), np.eye(model.n)
        )


class TestNoiseProperties:
    @given(
        st.floats(0.0, 2.0),
        st.floats(0.0, 1.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_perturbation_is_seed_deterministic(self, sigma, censor, seed):
        noise = NoisyEstimates(sigma=sigma, censor_fraction=censor, seed=seed)
        rng = np.random.default_rng(seed)
        model = ShuffleModel(h=rng.uniform(0, 10, (4, 6)), rate=1.0)
        a = noise.perturb_model(model)
        b = noise.perturb_model(model)
        np.testing.assert_array_equal(a.h, b.h)
        # Commitments pass through untouched.
        np.testing.assert_array_equal(a.v0, model.v0)
        assert a.rate == model.rate

    @given(st.integers(0, 10_000), st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_reseeded_stable_per_salt(self, seed, salt):
        noise = NoisyEstimates(sigma=0.5, seed=seed)
        assert noise.reseeded(salt) == noise.reseeded(salt)
        if salt != seed:
            # Different salts give independent draws (overwhelmingly).
            assert noise.reseeded(salt).seed != noise.reseeded(salt + 1).seed


class TestReplanRecoveryConservation:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_dag_replan_delivers_every_byte(self, seed):
        # End-to-end conservation: a two-stage chain loses node 3's
        # ingress mid-run; under replan-stage the job must still complete
        # with every stage's full planned volume delivered and the final
        # placements all on nodes that could receive.
        rng = np.random.default_rng(seed)
        n = 4
        h1 = rng.integers(1, 20, size=(n, 6)).astype(float)
        h2 = rng.integers(1, 20, size=(n, 6)).astype(float)
        dag = (
            JobDAG("chain")
            .add("up", ShuffleModel(h=h1, rate=1.0))
            .add("down", ShuffleModel(h=h2, rate=1.0), parents=("up",))
        )
        fabric = Fabric(n_ports=n, rate=1.0)
        dyn = FabricDynamics.fail(
            time=0.5, ports=[3], fabric=fabric, direction="ingress"
        )
        result = DAGExecutor().run(
            dag, dynamics=dyn, stage_policy="replan-stage"
        )
        assert result.completed
        for s in result.stages.values():
            assert s.status == "completed"
            # The final plan moves the stage's full volume (conservation:
            # aborted-attempt bytes were re-sent, not silently dropped).
            mass = np.bincount(
                s.plan.dest,
                weights=s.plan.model.partition_sizes,
                minlength=n,
            )
            assert mass.sum() == pytest.approx(s.plan.model.h.sum())
            # Nothing may terminate on the dead ingress after its failure.
            if s.attempts > 1:
                assert mass[3] == pytest.approx(0.0)
