"""Tests for ``ccf sweep``: the parallel, cache-aware engine CLI."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.engine import CellCache, cell_key
from repro.experiments.registry import SWEEPS, build_sweep


class TestParser:
    def test_requires_known_sweep(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "motivating"])  # not a sweep

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "fig5", "--quick", "--jobs", "4",
             "--cache-dir", "/tmp/x", "--resume", "--markdown"]
        )
        assert args.jobs == 4 and args.quick and args.resume
        assert args.cache_dir == "/tmp/x"


class TestValidation:
    def test_jobs_zero_rejected(self, capsys):
        assert main(["sweep", "psweep", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_no_cache_resume_conflict(self, capsys):
        assert main(["sweep", "psweep", "--no-cache", "--resume"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_requires_existing_cache_dir(self, tmp_path, capsys):
        missing = str(tmp_path / "never-created")
        assert main(
            ["sweep", "psweep", "--resume", "--cache-dir", missing]
        ) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_scale_factor_rejected_for_non_figure_sweep(self, capsys):
        assert main(
            ["sweep", "psweep", "--quick", "--no-cache",
             "--scale-factor", "1"]
        ) == 2
        assert "figure sweeps" in capsys.readouterr().err


class TestExecution:
    def test_parallel_cold_then_warm_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["sweep", "psweep", "--quick", "--jobs", "2",
             "--cache-dir", cache]
        ) == 0
        cold = capsys.readouterr()
        assert "cache hits: 0" in cold.err
        assert "jobs: 2" in cold.err
        assert "p_per_node" in cold.out

        assert main(
            ["sweep", "psweep", "--quick", "--jobs", "2",
             "--cache-dir", cache]
        ) == 0
        warm = capsys.readouterr()
        assert "executed: 0" in warm.err
        assert warm.out == cold.out  # bit-identical table text

    def test_no_cache_executes_every_time(self, capsys):
        assert main(["sweep", "ablation-heuristic", "--quick",
                     "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "cache hits: 0" in err and "cache=off" in err

    def test_sweep_matches_run_table(self, tmp_path, capsys):
        assert main(["run", "fig7", "--quick"]) == 0
        run_out = capsys.readouterr().out
        assert main(
            ["sweep", "fig7", "--quick", "--jobs", "2",
             "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert capsys.readouterr().out == run_out

    def test_resume_after_simulated_interrupt(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(
            ["sweep", "ablation-heuristic", "--quick",
             "--cache-dir", str(cache_dir)]
        ) == 0
        full = capsys.readouterr()
        # Simulate an interrupt that lost the last completed cell.
        spec = build_sweep("ablation-heuristic", quick=True)
        cache = CellCache(cache_dir)
        lost = cache.path(cell_key(spec, spec.cells[-1]))
        assert lost.exists()
        lost.unlink()

        assert main(
            ["sweep", "ablation-heuristic", "--quick", "--resume",
             "--cache-dir", str(cache_dir)]
        ) == 0
        resumed = capsys.readouterr()
        n = len(spec.cells)
        assert f"resumed {n - 1}/{n} cells from cache" in resumed.err
        assert "executed: 1" in resumed.err
        assert resumed.out == full.out

    def test_csv_stdout_is_pure(self, capsys):
        assert main(["sweep", "ablation-heuristic", "--quick",
                     "--no-cache", "--csv"]) == 0
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("sort_partitions,")
        assert "cells:" not in out  # summary stays on stderr


class TestRegistry:
    def test_sweeps_are_registered_experiments(self):
        from repro.experiments.registry import EXPERIMENTS

        assert set(SWEEPS) <= set(EXPERIMENTS)

    def test_every_sweep_builds_a_quick_grid(self):
        for name in SWEEPS:
            spec = build_sweep(name, quick=True)
            assert spec.name == name
            assert spec.cells, name
