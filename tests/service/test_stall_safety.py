"""Stall-detector safety in service mode.

Overloaded ``ccf serve`` runs legitimately produce zero-duration epochs:
an admission controller's deferral wakeups can land several releases on
the same instant, and each re-poll of the :class:`ArrivalSource` at an
unchanged clock is one more epoch without clock progress.  The stall
watchdog must treat those as the short bursts they are -- the counter
resets on every epoch that advances the clock -- and only trip on an
unbounded streak (a genuine spin).
"""

import pytest

from repro.core.resilience import Backoff, StallError
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.obs.instrument import Instrumentation
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import (
    AdmissionController,
    make_admission_policy,
)
from repro.service.arrivals import (
    ArrivalConfig,
    ArrivalStream,
    rate_for_load,
)


class _JitterySource:
    """Scripted source pinning the epoch horizon at ``now`` in bursts.

    Every ``burst``-th ``next_time`` call yields real progress
    (``now + 0.5``); the calls in between return ``now``, which clamps
    the next epoch's duration to zero -- the worst-case shape of
    same-instant deferral wakeups.  Past ``horizon`` the source reports
    exhausted so the run can drain.
    """

    def __init__(self, horizon: float, burst: int) -> None:
        self.horizon = horizon
        self.burst = burst
        self.calls = 0

    def next_time(self, now):
        if now >= self.horizon:
            return None
        self.calls += 1
        if self.calls % self.burst == 0:
            return now + 0.5
        return now

    def take(self, now, slack):
        return []


def _run_with_source(source, *, stall_epochs):
    sim = CoflowSimulator(
        Fabric(n_ports=2, rate=1.0),
        make_scheduler("fair"),
        stall_epochs=stall_epochs,
    )
    return sim.run(
        [Coflow([Flow(0, 1, 5.0)], 0.0, coflow_id=0)], source=source
    )


class TestZeroDurationBursts:
    def test_bursts_below_the_limit_never_trip(self):
        # ~hundreds of zero-duration epochs in total, but every burst is
        # far shorter than the limit and each 0.5 s hop resets the
        # counter: the run must complete.
        src = _JitterySource(horizon=4.0, burst=16)
        res = _run_with_source(src, stall_epochs=64)
        assert res.ccts == {0: pytest.approx(5.0)}
        assert src.calls > 64  # the watchdog saw more polls than its limit

    def test_unbounded_streak_still_trips(self):
        # The same shape without the periodic hop is a genuine spin and
        # must abort rather than loop forever.
        src = _JitterySource(horizon=4.0, burst=10**9)
        with pytest.raises(StallError, match="stalled"):
            _run_with_source(src, stall_epochs=64)

    def test_deferred_past_arrival_releases_are_safe(self):
        # Releases whose arrival_time lies in the past (deferred
        # admissions) join mid-burst without tripping the detector.
        class _DeferringSource(_JitterySource):
            def __init__(self):
                super().__init__(horizon=4.0, burst=16)
                self.released = False

            def take(self, now, slack):
                if not self.released and now >= 1.0:
                    self.released = True
                    return [Coflow([Flow(1, 0, 2.0)], 0.25, coflow_id=1)]
                return []

        src = _DeferringSource()
        res = _run_with_source(src, stall_epochs=64)
        assert set(res.ccts) == {0, 1}
        # CCT charges the queueing delay back to the original arrival.
        assert res.ccts[1] >= 2.0


class TestOverloadedServiceStallSafety:
    def test_bounded_queue_overload_completes_with_tight_budget(self):
        # A deterministic overloaded bounded-queue scenario: deferral
        # re-polls dominate the epoch count (the event-horizon batching
        # workload), yet the run finishes under a stall budget two
        # orders below the default.
        cfg = ArrivalConfig(
            n_ports=8, users=20, max_arrivals=60, seed=11,
            size_mix="facebook",
        )
        # 2x overload, the same wiring ``run_service`` uses.
        fabric = Fabric(n_ports=8, rate=rate_for_load(cfg, 2.0))
        policy = make_admission_policy(
            "bounded-queue",
            watermark_s=5.0,
            queue_limit=64,
            backoff=Backoff(
                max_attempts=60, base_delay=0.1, multiplier=1.2,
                max_delay=1.0, jitter=0.1,
            ),
        )
        controller = AdmissionController(
            ArrivalStream(cfg), policy, fabric, metrics=MetricsRegistry()
        )

        class _Monitor(Instrumentation):
            enabled = True

            def coflow_complete(self, cid, *, time, cct):
                controller.record_completion(cid, time=time, cct=cct)

            def coflow_abort(self, cid, *, time):
                controller.record_abort(cid, time=time)

        sim = CoflowSimulator(
            fabric, make_scheduler("fair"),
            instrumentation=_Monitor(), stall_epochs=64,
        )
        res = sim.run([], source=controller)
        assert controller.arrivals == 60
        assert controller.admitted + controller.shed == 60
        assert controller.completed == controller.admitted > 0
        assert controller.deferrals > 0
        assert res.n_epochs > controller.admitted  # re-polls dominate
