"""Tests for the admission policies and the controller."""

import pytest

from repro.network.fabric import Fabric
from repro.obs import MetricsRegistry, Tracer
from repro.service.admission import (
    AcceptAll,
    AdmissionController,
    BoundedQueue,
    LoadShedding,
    ServiceState,
    SLOGuard,
    make_admission_policy,
)
from repro.service.arrivals import ArrivalConfig, ArrivalStream


def state(
    *,
    backlog_bytes=0.0,
    capacity=1.0,
    queued=0,
    p95=None,
    active=0,
    now=0.0,
):
    return ServiceState(
        now=now,
        outstanding_bytes=backlog_bytes,
        capacity=capacity,
        active_coflows=active,
        queued=queued,
        recent_p95=p95,
    )


def coflow_of(volume):
    """A one-flow coflow with the given volume (policy rulings only)."""
    from repro.network.flow import Coflow, Flow

    return Coflow(
        flows=[Flow(src=0, dst=1, volume=volume)],
        arrival_time=0.0,
        coflow_id=0,
    )


class TestServiceState:
    def test_backlog_seconds(self):
        assert state(backlog_bytes=10.0, capacity=2.0).backlog_seconds == 5.0

    def test_float_error_clamps_to_zero(self):
        assert state(backlog_bytes=-1e-14).backlog_seconds == 0.0

    def test_dead_fabric_is_infinite_backlog(self):
        s = state(backlog_bytes=1.0, capacity=0.0)
        assert s.backlog_seconds == float("inf")


class TestAcceptAll:
    def test_always_admits(self):
        p = AcceptAll()
        s = state(backlog_bytes=1e18, capacity=1.0, p95=1e9)
        assert p.decide(coflow_of(1e12), s, attempt=99) == ("admit", "")


class TestBoundedQueue:
    def test_admits_below_watermark(self):
        p = BoundedQueue(watermark_s=10.0)
        assert p.decide(coflow_of(1.0), state(backlog_bytes=5.0), 0) == (
            "admit",
            "",
        )

    def test_defers_above_watermark(self):
        p = BoundedQueue(watermark_s=10.0)
        s = state(backlog_bytes=20.0)
        assert p.decide(coflow_of(1.0), s, 0) == ("defer", "backpressure")

    def test_sheds_when_queue_full(self):
        p = BoundedQueue(watermark_s=10.0, queue_limit=4)
        s = state(backlog_bytes=20.0, queued=4)
        assert p.decide(coflow_of(1.0), s, 0) == ("shed", "queue_full")

    def test_sheds_after_retries_exhausted(self):
        p = BoundedQueue(watermark_s=10.0)
        s = state(backlog_bytes=20.0)
        attempt = p.backoff.max_attempts
        assert p.decide(coflow_of(1.0), s, attempt) == (
            "shed",
            "retries_exhausted",
        )

    def test_defer_delay_follows_backoff(self):
        p = BoundedQueue()
        assert p.defer_delay(0) == p.backoff.delay(1)
        # Past the schedule the delay saturates instead of erroring.
        assert p.defer_delay(99) == p.backoff.delay(p.backoff.max_attempts)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(watermark_s=0.0)
        with pytest.raises(ValueError):
            BoundedQueue(queue_limit=0)


class TestLoadShedding:
    def test_admits_below_watermark(self):
        p = LoadShedding(watermark_s=10.0, large_bytes=100.0)
        assert p.decide(coflow_of(1e6), state(backlog_bytes=1.0), 0) == (
            "admit",
            "",
        )

    def test_degraded_band_sheds_only_large(self):
        p = LoadShedding(watermark_s=10.0, large_bytes=100.0, hard_factor=3.0)
        s = state(backlog_bytes=15.0)
        assert p.decide(coflow_of(50.0), s, 0) == ("admit", "degraded")
        assert p.decide(coflow_of(200.0), s, 0) == ("shed", "watermark_large")

    def test_hard_watermark_sheds_everything(self):
        p = LoadShedding(watermark_s=10.0, large_bytes=100.0, hard_factor=3.0)
        s = state(backlog_bytes=30.0)
        assert p.decide(coflow_of(1.0), s, 0) == ("shed", "watermark_hard")

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadShedding(watermark_s=-1.0)
        with pytest.raises(ValueError):
            LoadShedding(large_bytes=0.0)
        with pytest.raises(ValueError):
            LoadShedding(hard_factor=0.5)


class TestSLOGuard:
    def test_healthy_admits(self):
        p = SLOGuard(budget_s=60.0)
        assert p.decide(coflow_of(1.0), state(p95=10.0), 0) == ("admit", "")

    def test_measured_breach_triggers_shedding(self):
        p = SLOGuard(budget_s=60.0)
        s = state(backlog_bytes=30.0, p95=100.0)
        assert p.decide(coflow_of(1.0), s, 0) == ("shed", "slo_breach")

    def test_predictive_breach_needs_no_p95(self):
        # Under overload the CCT window lags; the backlog signal must
        # trip the guard before any measured breach exists.
        p = SLOGuard(budget_s=60.0, backlog_factor=0.4)
        s = state(backlog_bytes=30.0, p95=None)  # 30 s > 0.4 * 60 s
        assert p.decide(coflow_of(1.0), s, 0) == ("shed", "slo_breach")

    def test_latch_and_backlog_governed_recovery(self):
        p = SLOGuard(budget_s=60.0, backlog_factor=0.5, margin=0.9)
        assert p.decide(coflow_of(1.0), state(backlog_bytes=40.0), 0)[0] == (
            "shed"
        )
        # Still above the recovery threshold: keeps shedding even though
        # the (frozen) p95 window shows nothing.
        s = state(backlog_bytes=28.0, p95=None)  # > 0.9 * 30 s
        assert p.decide(coflow_of(1.0), s, 0) == ("shed", "slo_breach")
        # Backlog re-enters with hysteresis: admits again.
        s = state(backlog_bytes=20.0, p95=None)
        assert p.decide(coflow_of(1.0), s, 0) == ("admit", "recovered")

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOGuard(budget_s=0.0)
        with pytest.raises(ValueError):
            SLOGuard(margin=0.0)
        with pytest.raises(ValueError):
            SLOGuard(backlog_factor=1.5)


class TestRegistry:
    def test_make_by_name(self):
        p = make_admission_policy("load-shedding", watermark_s=5.0)
        assert isinstance(p, LoadShedding)
        assert p.watermark_s == 5.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown admission policy"):
            make_admission_policy("yolo")


def make_controller(policy, *, rate=10.0, arrivals=20, seed=0, obs=None):
    cfg = ArrivalConfig(
        n_ports=4, users=10, qps_per_user=1.0, max_arrivals=arrivals,
        seed=seed, size_scale=1e-6,
    )
    fabric = Fabric(n_ports=4, rate=rate)
    return AdmissionController(
        ArrivalStream(cfg), policy, fabric,
        metrics=MetricsRegistry(), instrumentation=obs,
    )


class TestAdmissionController:
    def test_accept_all_admits_everything(self):
        c = make_controller(AcceptAll(), arrivals=15)
        released = c.take(1e9, 0.0)
        assert len(released) == 15
        assert c.arrivals == c.admitted == 15
        assert c.shed == c.deferrals == 0
        assert c.next_time(0.0) is None

    def test_backlog_tracks_admissions_and_completions(self):
        c = make_controller(AcceptAll(), rate=1.0, arrivals=5)
        released = c.take(1e9, 0.0)
        total = sum(cf.total_volume for cf in released)
        assert c.state(0.0).outstanding_bytes == pytest.approx(total)
        for cf in released:
            c.record_completion(cf.coflow_id, time=10.0, cct=1.0)
        assert c.state(0.0).backlog_seconds == 0.0
        assert c.completed == 5
        # Unknown / duplicate completions are ignored, not crashed on.
        c.record_completion(999, time=10.0, cct=1.0)
        assert c.completed == 5

    def test_defer_then_release(self):
        # A tiny fabric (capacity 0.004 B/s) so a single admitted coflow
        # pushes the backlog far over a 1-second watermark.
        policy = BoundedQueue(watermark_s=1.0, queue_limit=10)
        c = make_controller(policy, rate=0.001, arrivals=2)
        first = c.take(c.stream.peek_time() + 1e-9, 0.0)
        assert len(first) == 1  # admitted; second arrival not yet due
        released = c.take(1e9, 0.0)  # second arrival: backlog high
        assert released == []
        assert c.deferrals == 1
        assert c.next_time(1e9) is not None  # the deferred release time
        # Drain the backlog; the deferred coflow is admitted on release.
        c.record_completion(first[0].coflow_id, time=1.0, cct=1.0)
        released = c.take(2e9, 0.0)
        assert len(released) == 1
        assert c.admitted == 2

    def test_shed_counters_and_metrics(self):
        policy = LoadShedding(watermark_s=1e-9, large_bytes=1e-9)
        c = make_controller(policy, rate=1.0, arrivals=10)
        admitted = c.take(1e9, 0.0)
        # First arrival admits (no backlog yet); everything after is
        # shed at the watermark because nothing ever completes.
        assert len(admitted) == 1
        assert c.shed == 9
        shed_total = sum(
            inst.value
            for name, _kind, _help, family in c.metrics.families()
            if name == "service_shed_total"
            for _labels, inst in family.items()
        )
        assert shed_total == 9

    def test_admission_events_emitted(self):
        tracer = Tracer()
        c = make_controller(AcceptAll(), arrivals=5, obs=tracer)
        c.take(1e9, 0.0)
        rulings = [e for e in tracer.events if e["kind"] == "admission"]
        assert len(rulings) == 5
        assert all(e["decision"] == "admit" for e in rulings)
        assert all(e["policy"] == "accept-all" for e in rulings)

    def test_recent_p95_needs_samples(self):
        c = make_controller(AcceptAll(), arrivals=25)
        released = c.take(1e9, 0.0)
        for cf in released[:19]:
            c.record_completion(cf.coflow_id, time=1.0, cct=1.0)
        assert c.recent_p95 is None
        c.record_completion(released[19].coflow_id, time=1.0, cct=1.0)
        assert c.recent_p95 == pytest.approx(1.0)
