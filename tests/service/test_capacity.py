"""Tests for the capacity planner's bisection searches."""

import pytest

from repro.service import (
    ArrivalConfig,
    ServiceConfig,
    find_load_capacity,
    find_node_capacity,
    rate_for_load,
)


def probe_config(**kwargs):
    arrival = kwargs.pop(
        "arrival", ArrivalConfig(n_ports=12, max_arrivals=60, seed=7)
    )
    return ServiceConfig(arrival=arrival, **kwargs)


class TestLoadCapacity:
    def test_finds_a_knee(self):
        result = find_load_capacity(
            probe_config(), budget_s=60.0, lo=0.3, hi=2.0, iters=2
        )
        assert result.axis == "load"
        assert result.best is not None
        assert 0.3 <= result.best < 2.0
        # Every probe is recorded: bounds plus the bisection midpoints.
        assert len(result.probes) == 4
        assert "p95 CCT" in result.table()

    def test_hopeless_budget_returns_none(self):
        result = find_load_capacity(
            probe_config(), budget_s=1e-6, lo=0.3, hi=2.0
        )
        assert result.best is None
        assert len(result.probes) == 1  # lo fails, search stops

    def test_generous_budget_returns_hi(self):
        result = find_load_capacity(
            probe_config(), budget_s=1e9, lo=0.3, hi=0.9
        )
        assert result.best == 0.9
        assert len(result.probes) == 2  # both bounds pass, no bisection

    def test_rejects_explicit_rate(self):
        with pytest.raises(ValueError, match="rate"):
            find_load_capacity(probe_config(rate=1e6), budget_s=60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_load_capacity(probe_config(), budget_s=0.0)
        with pytest.raises(ValueError):
            find_load_capacity(probe_config(), budget_s=60.0, lo=2.0, hi=1.0)


class TestNodeCapacity:
    def test_finds_smallest_fabric(self):
        # A generous fixed rate: even the smallest fabric passes, so the
        # search answers after probing both bounds.
        arrival = ArrivalConfig(n_ports=12, max_arrivals=40, seed=7)
        rate = rate_for_load(arrival, 0.3)
        result = find_node_capacity(
            probe_config(arrival=arrival, rate=rate),
            budget_s=1e9,
            lo=4,
            hi=16,
        )
        assert result.axis == "nodes"
        assert result.best == 4

    def test_hopeless_budget_returns_none(self):
        result = find_node_capacity(
            probe_config(rate=1.0), budget_s=1e-6, lo=4, hi=8
        )
        assert result.best is None

    def test_requires_explicit_rate(self):
        with pytest.raises(ValueError, match="rate"):
            find_node_capacity(probe_config(), budget_s=60.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            find_node_capacity(probe_config(rate=1.0), budget_s=60.0, lo=1)


class TestEdgeStatus:
    """The result says WHICH edge it hit, not just a bare best value."""

    def test_load_budget_violated_at_min_probe(self):
        result = find_load_capacity(
            probe_config(), budget_s=1e-6, lo=0.3, hi=2.0
        )
        assert result.status == "none-ok"
        assert result.best is None
        assert "breaches" in result.describe()
        # The failing bound is named so the operator can widen the range.
        assert "0.3" in result.describe()

    def test_load_budget_met_at_max_probe(self):
        result = find_load_capacity(
            probe_config(), budget_s=1e9, lo=0.3, hi=0.9
        )
        assert result.status == "all-ok"
        assert result.best == 0.9
        assert "outside the probed range" in result.describe()

    def test_load_interior_knee(self):
        result = find_load_capacity(
            probe_config(), budget_s=60.0, lo=0.3, hi=2.0, iters=2
        )
        assert result.status == "knee"
        assert "probed range" not in result.describe()
        assert f"{result.best:g}" in result.describe()

    def test_node_budget_violated_at_max_probe(self):
        result = find_node_capacity(
            probe_config(rate=1.0), budget_s=1e-6, lo=4, hi=8
        )
        assert result.status == "none-ok"
        assert result.best is None
        assert len(result.probes) == 1  # hi fails, search stops
        assert "largest probed fabric" in result.describe()

    def test_node_budget_met_at_min_probe(self):
        arrival = ArrivalConfig(n_ports=12, max_arrivals=40, seed=7)
        result = find_node_capacity(
            probe_config(arrival=arrival, rate=rate_for_load(arrival, 0.3)),
            budget_s=1e9,
            lo=4,
            hi=16,
        )
        assert result.status == "all-ok"
        assert result.best == 4
        assert "outside the probed range" in result.describe()
