"""End-to-end tests for the open-loop service: run_service and reports."""

import pytest

from repro.obs import StreamingTracer, read_jsonl
from repro.service import ArrivalConfig, ServiceConfig, run_service


def small_config(**kwargs):
    arrival = kwargs.pop(
        "arrival", ArrivalConfig(n_ports=12, max_arrivals=80, seed=7)
    )
    defaults = dict(arrival=arrival, load=0.7)
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


# The overload demo's budget; robust across seeds at this stream scale
# (accept-all lands at 3-4x it, the shedding policies well inside it).
SLO_S = 60.0


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_config(load=0.0)
        with pytest.raises(ValueError):
            small_config(rate=-1.0)
        with pytest.raises(ValueError):
            small_config(slo_p95=0.0)
        with pytest.raises(ValueError):
            small_config(chaos_mtbf=-2.0)
        with pytest.raises(ValueError):
            small_config(chaos_mttr=0.0)

    def test_port_rate_from_load(self):
        cfg = small_config(load=0.5)
        assert cfg.port_rate == pytest.approx(
            2 * small_config(load=1.0).port_rate
        )
        assert small_config(rate=123.0).port_rate == 123.0


class TestHealthyService:
    def test_low_load_completes_everything(self):
        report, result, controller = run_service(
            small_config(slo_p95=SLO_S)
        )
        assert report.arrivals == 80
        assert report.admitted == 80
        assert report.shed == 0
        assert report.completed == 80
        assert report.aborted == 0
        assert report.slo_ok
        assert report.backlog_end_s == 0.0
        assert report.overall["p95"] > 0
        assert result.n_epochs == report.n_epochs
        assert len(controller.cct_samples) == 80

    def test_accounting_identities(self):
        report, _, _ = run_service(small_config())
        assert report.arrivals == report.admitted + report.shed
        assert report.admitted == report.completed + report.aborted

    def test_bit_reproducible(self):
        cfg = small_config(slo_p95=SLO_S)
        a = run_service(cfg)[0].to_dict()
        b = run_service(cfg)[0].to_dict()
        a.pop("wall_s"), b.pop("wall_s")
        assert a == b

    def test_streaming_trace_round_trips(self, tmp_path):
        path = tmp_path / "serve.jsonl"
        tracer = StreamingTracer(path, flush_every=64, header={"seed": 7})
        report, _, _ = run_service(small_config(), instrumentation=tracer)
        tracer.close()
        assert tracer.events == []  # nothing left in RAM
        header, events = read_jsonl(path)
        assert header["seed"] == 7
        admits = [e for e in events if e["kind"] == "admission"]
        assert len(admits) == report.arrivals
        completes = [e for e in events if e["kind"] == "coflow_complete"]
        assert len(completes) == report.completed


class TestOverload:
    """The graceful-degradation acceptance demo at 1.6x capacity."""

    def overloaded(self, policy):
        return run_service(
            ServiceConfig(
                arrival=ArrivalConfig(max_arrivals=150, seed=7),
                load=1.6,
                policy=policy,
                slo_p95=SLO_S,
            )
        )[0]

    def test_accept_all_collapses(self):
        report = self.overloaded("accept-all")
        assert report.shed == 0
        assert not report.slo_ok
        assert report.reported_p95 > SLO_S

    def test_load_shedding_keeps_the_slo(self):
        report = self.overloaded("load-shedding")
        assert report.shed > 0
        assert report.slo_ok

    def test_slo_guard_keeps_the_slo(self):
        report = self.overloaded("slo-guard")
        assert report.shed > 0
        assert report.slo_ok

    def test_bounded_queue_defers(self):
        report = self.overloaded("bounded-queue")
        assert report.deferrals > 0
        assert report.slo_ok


class TestSoak:
    def test_chaos_with_sustained_arrivals(self):
        report, result, _ = run_service(
            small_config(
                chaos_mtbf=10.0, chaos_mttr=1.0, recovery="retry",
            )
        )
        assert report.port_failures > 0
        # Retried coflows still finish: the stream drains completely.
        assert report.completed + report.aborted == report.admitted
        assert report.completed > 0
        assert result.makespan > 0

    def test_soak_is_deterministic(self):
        cfg = small_config(chaos_mtbf=10.0, recovery="retry")
        a = run_service(cfg)[0].to_dict()
        b = run_service(cfg)[0].to_dict()
        a.pop("wall_s"), b.pop("wall_s")
        assert a == b


class TestPolicyDefaults:
    def test_slo_guard_inherits_budget(self):
        report, _, _ = run_service(
            ServiceConfig(
                arrival=ArrivalConfig(max_arrivals=150, seed=7),
                load=1.6,
                policy="slo-guard",
                slo_p95=20.0,  # tight budget -> guard sheds earlier
            )
        )
        tight_shed = report.shed
        report60, _, _ = run_service(
            ServiceConfig(
                arrival=ArrivalConfig(max_arrivals=150, seed=7),
                load=1.6,
                policy="slo-guard",
                slo_p95=60.0,
            )
        )
        assert tight_shed > report60.shed

    def test_explicit_params_win(self):
        report, _, controller = run_service(
            small_config(
                policy="slo-guard",
                policy_params={"budget_s": 123.0},
                slo_p95=1.0,
            )
        )
        assert controller.policy.budget_s == 123.0
