"""Tests for the seeded open-loop arrival streams."""

import numpy as np
import pytest

from repro.service.arrivals import (
    ArrivalConfig,
    ArrivalStream,
    expected_coflow_bytes,
    offered_load,
    rate_for_load,
)


def _snapshot(stream, n=None):
    """(arrival_time, id, total volume, width) per coflow, for equality."""
    out = []
    for cf in stream:
        out.append(
            (cf.arrival_time, cf.coflow_id, cf.total_volume, len(cf.flows))
        )
        if n is not None and len(out) >= n:
            break
    return out


class TestArrivalConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalConfig(n_ports=1)
        with pytest.raises(ValueError):
            ArrivalConfig(users=0)
        with pytest.raises(ValueError):
            ArrivalConfig(qps_per_user=0.0)
        with pytest.raises(ValueError):
            ArrivalConfig(process="uniform")
        with pytest.raises(ValueError):
            ArrivalConfig(pareto_alpha=1.0)
        with pytest.raises(ValueError):
            ArrivalConfig(size_mix="weird")
        with pytest.raises(ValueError):
            ArrivalConfig(zipf_a=1.0)
        with pytest.raises(ValueError):
            ArrivalConfig(size_scale=0.0)
        with pytest.raises(ValueError):
            ArrivalConfig(max_arrivals=-1)
        with pytest.raises(ValueError):
            ArrivalConfig(horizon=0.0)

    def test_arrival_rate_composes_users_and_qps(self):
        cfg = ArrivalConfig(users=50, qps_per_user=0.2)
        assert cfg.arrival_rate == pytest.approx(10.0)


class TestArrivalStream:
    def test_deterministic_replay(self):
        cfg = ArrivalConfig(max_arrivals=200, seed=3)
        assert _snapshot(ArrivalStream(cfg)) == _snapshot(ArrivalStream(cfg))

    def test_seed_changes_stream(self):
        a = _snapshot(ArrivalStream(ArrivalConfig(max_arrivals=50, seed=1)))
        b = _snapshot(ArrivalStream(ArrivalConfig(max_arrivals=50, seed=2)))
        assert a != b

    def test_process_changes_gaps_not_validity(self):
        cfg = ArrivalConfig(max_arrivals=50, process="pareto", seed=5)
        coflows = list(ArrivalStream(cfg))
        assert len(coflows) == 50
        times = [c.arrival_time for c in coflows]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_ids_sequential_times_increasing(self):
        coflows = list(ArrivalStream(ArrivalConfig(max_arrivals=80, seed=0)))
        assert [c.coflow_id for c in coflows] == list(range(80))
        times = [c.arrival_time for c in coflows]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_flows_stay_on_fabric(self):
        cfg = ArrivalConfig(n_ports=6, max_arrivals=60, seed=9)
        for cf in ArrivalStream(cfg):
            for f in cf.flows:
                assert 0 <= f.src < 6
                assert 0 <= f.dst < 6
                assert f.src != f.dst
                assert f.volume > 0

    def test_skip_equals_pop(self):
        cfg = ArrivalConfig(max_arrivals=30, seed=4)
        a = ArrivalStream(cfg)
        a.skip(10)
        b = ArrivalStream(cfg)
        for _ in range(10):
            b.pop()
        assert _snapshot(a) == _snapshot(b)

    def test_horizon_cuts_stream(self):
        cfg = ArrivalConfig(max_arrivals=10_000, horizon=5.0, seed=0)
        coflows = list(ArrivalStream(cfg))
        assert coflows
        assert len(coflows) < 10_000
        assert all(c.arrival_time <= 5.0 for c in coflows)

    def test_exhaustion(self):
        stream = ArrivalStream(ArrivalConfig(max_arrivals=3, seed=0))
        assert len(list(stream)) == 3
        assert stream.peek_time() is None
        with pytest.raises(StopIteration):
            stream.pop()

    def test_zipf_mix(self):
        cfg = ArrivalConfig(size_mix="zipf", max_arrivals=60, seed=2)
        coflows = list(ArrivalStream(cfg))
        assert len(coflows) == 60
        assert all(1 <= len(c.flows) <= 16 for c in coflows)

    def test_bounded_memory_is_lazy(self):
        # The stream never materializes more than one coflow.
        stream = ArrivalStream(ArrivalConfig(max_arrivals=1_000_000))
        assert stream.generated == 1
        stream.pop()
        assert stream.generated == 2


class TestCapacityMath:
    @pytest.mark.parametrize("mix", ["facebook", "zipf"])
    def test_analytic_mean_matches_empirical(self, mix):
        cfg = ArrivalConfig(size_mix=mix, max_arrivals=4000, seed=11)
        sizes = [cf.total_volume for cf in ArrivalStream(cfg)]
        analytic = expected_coflow_bytes(cfg)
        assert np.mean(sizes) == pytest.approx(analytic, rel=0.15)

    def test_rate_load_roundtrip(self):
        cfg = ArrivalConfig()
        rate = rate_for_load(cfg, 0.8)
        assert offered_load(cfg, rate) == pytest.approx(0.8)

    def test_mean_scales_linearly(self):
        a = expected_coflow_bytes(ArrivalConfig(size_scale=0.001))
        b = expected_coflow_bytes(ArrivalConfig(size_scale=0.002))
        assert b == pytest.approx(2 * a)

    def test_validation(self):
        with pytest.raises(ValueError):
            offered_load(ArrivalConfig(), 0.0)
        with pytest.raises(ValueError):
            rate_for_load(ArrivalConfig(), -1.0)
