"""Property-based tests for the extension modules.

Covers the invariants introduced after the headline reproduction:
LP-vs-exact sandwiching, merged-model equivalence, deadline admission
soundness, topology bounds, key-level conservation, and I/O round trips.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.heuristic import ccf_heuristic
from repro.core.model import ShuffleModel
from repro.core.multi import joint_makespan, merge_models, plan_concurrent
from repro.core.relax import ccf_lp_rounding
from repro.core.topology_aware import evaluate_on_topology
from repro.join.keylevel import refine_model
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.io import coflow_from_dict, coflow_to_dict
from repro.network.schedulers.deadline import DeadlineScheduler
from repro.network.simulator import CoflowSimulator
from repro.network.topology import TwoLevelTopology


@st.composite
def chunk_matrices(draw, max_n=5, max_p=6):
    n = draw(st.integers(2, max_n))
    p = draw(st.integers(1, max_p))
    h = draw(
        arrays(dtype=np.int64, shape=(n, p), elements=st.integers(0, 30))
    )
    return h.astype(float)


class TestRelaxProperties:
    @given(chunk_matrices())
    @settings(max_examples=25, deadline=None)
    def test_lp_bound_sandwiches_heuristic(self, h):
        model = ShuffleModel(h=h, rate=1.0)
        lp = ccf_lp_rounding(model, trials=4)
        t_heur = model.evaluate(ccf_heuristic(model)).bottleneck_bytes
        assert lp.lp_lower_bound <= t_heur + 1e-6
        assert lp.bottleneck_bytes + 1e-9 >= lp.lp_lower_bound


class TestMergeProperties:
    @given(chunk_matrices(max_p=4), chunk_matrices(max_p=4))
    @settings(max_examples=25, deadline=None)
    def test_merged_evaluation_equals_summed_loads(self, h1, h2):
        n = min(h1.shape[0], h2.shape[0])
        m1 = ShuffleModel(h=h1[:n], rate=1.0)
        m2 = ShuffleModel(h=h2[:n], rate=1.0)
        merged = merge_models([m1, m2])
        rng = np.random.default_rng(0)
        d1 = rng.integers(0, n, m1.p)
        d2 = rng.integers(0, n, m2.p)
        joint = merged.evaluate(np.concatenate([d1, d2]))
        e1, e2 = m1.evaluate(d1), m2.evaluate(d2)
        np.testing.assert_allclose(
            joint.send_loads, e1.send_loads + e2.send_loads
        )
        np.testing.assert_allclose(
            joint.recv_loads, e1.recv_loads + e2.recv_loads
        )
        assert joint.traffic == pytest.approx(e1.traffic + e2.traffic)

    @given(chunk_matrices(max_n=4, max_p=3))
    @settings(max_examples=10, deadline=None)
    def test_exact_concurrent_makespan_at_most_sequential_sum(self, h):
        # A theorem for the *exact* solver (concatenating the two
        # sequential optima is feasible for the merged instance); the
        # greedy can violate it, which is why the exact strategy is used.
        m1 = ShuffleModel(h=h, rate=1.0)
        m2 = ShuffleModel(h=h.copy(), rate=1.0)
        cp = plan_concurrent([m1, m2], strategy="ccf-exact")
        seq = 2 * m1.evaluate(
            plan_concurrent([m1], strategy="ccf-exact")[0].dest
        ).cct
        assert cp.makespan_seconds <= seq + 1e-6


class TestDeadlineProperties:
    @given(
        st.integers(2, 5),
        st.lists(
            st.tuples(
                st.integers(1, 50),   # volume
                st.floats(0.5, 20.0),  # deadline slack base
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_admitted_coflows_always_meet_deadlines(self, n, specs, seed):
        rng = np.random.default_rng(seed)
        coflows = []
        for i, (vol, dl) in enumerate(specs):
            src = int(rng.integers(0, n))
            dst = int(rng.integers(0, n - 1))
            if dst >= src:
                dst += 1
            coflows.append(
                Coflow(
                    [Flow(src, dst, float(vol))],
                    arrival_time=float(i) * 0.5,
                    deadline=float(dl),
                    coflow_id=i,
                )
            )
        sched = DeadlineScheduler(backfill=False)
        sim = CoflowSimulator(Fabric(n_ports=n, rate=1.0), sched)
        res = sim.run(coflows)
        for c in coflows:
            if sched.admitted(c.coflow_id):
                assert res.ccts[c.coflow_id] <= c.deadline * (1 + 1e-6)


class TestTopologyProperties:
    @given(chunk_matrices(max_n=4, max_p=5), st.floats(1.0, 16.0))
    @settings(max_examples=25, deadline=None)
    def test_topology_cct_at_least_nic_bound(self, h, over):
        n = h.shape[0]
        model = ShuffleModel(h=h, rate=1.0)
        topo = TwoLevelTopology(
            n_hosts=n, hosts_per_rack=2, host_rate=1.0, oversubscription=over
        )
        rng = np.random.default_rng(1)
        dest = rng.integers(0, n, h.shape[1])
        tm = evaluate_on_topology(model, topo, dest)
        assert tm.cct >= model.evaluate(dest).cct - 1e-9
        assert tm.cct >= tm.uplink_seconds - 1e-12
        assert tm.cct >= tm.nic_seconds - 1e-12


class TestKeyLevelProperties:
    @given(st.integers(2, 4), st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_refinement_conserves_bytes(self, n, p, seed):
        rng = np.random.default_rng(seed)
        shards = [rng.integers(0, 20, size=rng.integers(1, 25)) for _ in range(n)]
        rel = DistributedRelation(shards=shards, payload_bytes=3.0)
        part = HashPartitioner(p=p)
        ref = refine_model([rel], part, split_fraction=0.5, rate=1.0)
        assert ref.model.h.sum() == pytest.approx(rel.total_bytes)
        # Every refined column belongs to a declared partition.
        assert (ref.column_partition >= 0).all()
        assert (ref.column_partition < p).all()


class TestIOProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 5), st.integers(0, 5), st.integers(1, 100)
            ).filter(lambda t: t[0] != t[1]),
            min_size=1,
            max_size=8,
        ),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_coflow_dict_round_trip(self, flow_specs, arrival):
        cf = Coflow(
            [Flow(s, d, float(v)) for s, d, v in flow_specs],
            arrival_time=arrival,
            coflow_id=3,
        )
        back = coflow_from_dict(coflow_to_dict(cf))
        assert back.total_volume == pytest.approx(cf.total_volume)
        assert back.width == cf.width
        assert back.arrival_time == pytest.approx(cf.arrival_time)
