"""Tests: the closed-form predictor tracks the actual planner."""

import pytest

from repro.core.framework import CCF
from repro.core.predictor import predict_ccts
from repro.workloads.analytic import AnalyticJoinWorkload


def planner_ccts(wl):
    cmp = CCF().compare(wl)
    return {s: cmp.cct(s) for s in ("hash", "mini", "ccf")}


class TestPredictor:
    @pytest.mark.parametrize("n_nodes", [50, 100])
    @pytest.mark.parametrize("skew", [0.0, 0.2, 0.4])
    def test_tracks_planner_within_ten_percent(self, n_nodes, skew):
        wl = AnalyticJoinWorkload(
            n_nodes=n_nodes, scale_factor=10.0, zipf_s=0.8, skew=skew
        )
        pred = predict_ccts(wl)
        actual = planner_ccts(wl)
        assert pred.hash_cct == pytest.approx(actual["hash"], rel=0.10)
        assert pred.mini_cct == pytest.approx(actual["mini"], rel=0.10)
        assert pred.ccf_cct == pytest.approx(actual["ccf"], rel=0.15)

    def test_speedups_track(self):
        wl = AnalyticJoinWorkload(n_nodes=100, scale_factor=10.0)
        pred = predict_ccts(wl)
        actual = planner_ccts(wl)
        assert pred.speedup_over_mini == pytest.approx(
            actual["mini"] / actual["ccf"], rel=0.2
        )
        assert pred.speedup_over_hash == pytest.approx(
            actual["hash"] / actual["ccf"], rel=0.2
        )

    def test_zipf_zero_predicts_huge_ccf_advantage(self):
        wl = AnalyticJoinWorkload(
            n_nodes=100, scale_factor=10.0, zipf_s=0.0, skew=0.2
        )
        pred = predict_ccts(wl)
        # Uniform chunks: CCF spreads perfectly; Mini collapses to node 0.
        assert pred.speedup_over_mini > 50

    def test_paper_bands_at_full_scale(self):
        # The predictor reproduces the paper's Fig. 5 speedup bands at
        # SF 600 instantly (no 15000-partition planning involved).
        for n, lo, hi in ((100, 7.0, 9.5), (1000, 14.0, 17.0)):
            wl = AnalyticJoinWorkload(n_nodes=n)  # SF 600 defaults
            pred = predict_ccts(wl)
            assert lo < pred.speedup_over_mini < hi

    def test_single_node_is_free(self):
        wl = AnalyticJoinWorkload(n_nodes=1, scale_factor=0.1)
        assert predict_ccts(wl).ccf_cct == 0.0
