"""Unit tests for the Hash and Mini application-level baselines."""

import numpy as np
import pytest

from repro.core.model import ShuffleModel
from repro.core.strategies import STRATEGIES, hash_assignment, mini_assignment
from tests.conftest import random_model


class TestHash:
    def test_modulus_assignment(self):
        m = ShuffleModel(h=np.ones((3, 7)), rate=1.0)
        dest = hash_assignment(m)
        np.testing.assert_array_equal(dest, np.arange(7) % 3)

    def test_spreads_partitions_evenly(self):
        m = ShuffleModel(h=np.ones((4, 40)), rate=1.0)
        counts = np.bincount(hash_assignment(m), minlength=4)
        np.testing.assert_array_equal(counts, 10)


class TestMini:
    def test_keeps_largest_chunk_local(self):
        h = np.array([[1.0, 9.0], [5.0, 2.0], [2.0, 2.0]])
        dest = mini_assignment(ShuffleModel(h=h, rate=1.0))
        np.testing.assert_array_equal(dest, [1, 0])

    def test_globally_minimizes_traffic(self, rng):
        # Partitions are independent in the traffic objective, so Mini's
        # per-partition greedy is the global optimum: no random assignment
        # can move fewer bytes.
        m = random_model(rng, 5, 10)
        best = m.evaluate(mini_assignment(m)).traffic
        for _ in range(50):
            dest = rng.integers(0, 5, size=10)
            assert m.evaluate(dest).traffic >= best - 1e-9

    def test_tie_breaks_to_lowest_node(self):
        # Uniform chunks: argmax picks node 0 everywhere -- the degenerate
        # "flush everything to one node" behaviour the paper describes at
        # zipf = 0.
        m = ShuffleModel(h=np.ones((4, 8)), rate=1.0)
        np.testing.assert_array_equal(mini_assignment(m), 0)

    def test_empty_model(self):
        m = ShuffleModel(h=np.zeros((3, 0)), rate=1.0)
        assert mini_assignment(m).shape == (0,)


class TestRegistry:
    def test_contains_both_baselines(self):
        assert set(STRATEGIES) == {"hash", "mini"}

    def test_entries_are_callable(self, small_model):
        for fn in STRATEGIES.values():
            dest = fn(small_model)
            assert dest.shape == (small_model.p,)
