"""Tests for concurrent multi-operator planning."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.multi import (
    ConcurrentPlan,
    joint_makespan,
    merge_models,
    plan_concurrent,
)
from tests.conftest import random_model


class TestMergeModels:
    def test_concatenates_columns(self, rng):
        a = random_model(rng, 4, 3)
        b = random_model(rng, 4, 5)
        merged = merge_models([a, b])
        assert merged.p == 8
        np.testing.assert_allclose(merged.h[:, :3], a.h)
        np.testing.assert_allclose(merged.h[:, 3:], b.h)

    def test_initial_flows_add(self, rng):
        a = random_model(rng, 3, 2, with_v0=True)
        b = random_model(rng, 3, 2, with_v0=True)
        merged = merge_models([a, b])
        np.testing.assert_allclose(merged.v0, a.v0 + b.v0)

    def test_extras_add(self):
        a = ShuffleModel(h=np.ones((2, 1)), extra_send=np.array([5.0, 0.0]))
        b = ShuffleModel(h=np.ones((2, 1)), extra_send=np.array([1.0, 2.0]))
        merged = merge_models([a, b])
        np.testing.assert_allclose(merged.extra_send, [6.0, 2.0])

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least one"):
            merge_models([])
        a = random_model(rng, 3, 2)
        b = random_model(rng, 4, 2)
        with pytest.raises(ValueError, match="node counts"):
            merge_models([a, b])
        c = random_model(rng, 3, 2, rate=2.0)
        with pytest.raises(ValueError, match="rate"):
            merge_models([a, c])


class TestJointMakespan:
    def test_single_plan_equals_its_cct(self, rng):
        m = random_model(rng, 4, 6)
        plan = CCF().plan(m, "ccf")
        assert joint_makespan([plan]) == pytest.approx(plan.cct)

    def test_sums_port_loads(self):
        # Two shuffles whose traffic lands on the same receive port.
        m1 = ShuffleModel(h=np.array([[4.0], [0.0]]), rate=1.0)
        m2 = ShuffleModel(h=np.array([[6.0], [0.0]]), rate=1.0)
        p1 = CCF().plan(m1, "hash")  # partition 0 -> node 0 (local!)
        # Use explicit assignments for determinism.
        from repro.core.plan import ExecutionPlan

        p1 = ExecutionPlan(model=m1, dest=np.array([1]))
        p2 = ExecutionPlan(model=m2, dest=np.array([1]))
        assert joint_makespan([p1, p2]) == pytest.approx(10.0)

    def test_empty(self):
        assert joint_makespan([]) == 0.0


class TestPlanConcurrent:
    def test_split_preserves_assignments(self, rng):
        models = [random_model(rng, 5, 4) for _ in range(3)]
        cp = plan_concurrent(models)
        assert len(cp) == 3
        for m, plan in zip(models, cp.plans):
            assert plan.model is m
            assert plan.dest.shape == (m.p,)

    def test_makespan_not_worse_than_oblivious(self):
        # Identical symmetric operators: oblivious planning sends both to
        # the same ports; joint planning separates them.
        m1 = ShuffleModel(h=np.full((4, 1), 8.0), rate=1.0)
        m2 = ShuffleModel(h=np.full((4, 1), 8.0), rate=1.0)
        joint = plan_concurrent([m1, m2])
        oblivious = [CCF().plan(m, "ccf") for m in (m1, m2)]
        assert joint.makespan_seconds <= joint_makespan(oblivious) + 1e-9

    def test_joint_strictly_better_when_oblivious_collides(self):
        # Oblivious: both one-partition operators choose the same
        # destination (deterministic tie-break) and the recv port carries
        # both; joint: the merged greedy splits them.
        h = np.zeros((3, 1))
        h[0, 0] = 10.0
        h[1, 0] = 10.0  # ties: node 0 and 1 hold equal chunks
        m1 = ShuffleModel(h=h.copy(), rate=1.0)
        m2 = ShuffleModel(h=h.copy(), rate=1.0)
        oblivious = [CCF().plan(m, "ccf") for m in (m1, m2)]
        assert oblivious[0].dest[0] == oblivious[1].dest[0]
        joint = plan_concurrent([m1, m2])
        assert joint.makespan_seconds < joint_makespan(oblivious)

    def test_makespan_matches_merged_bottleneck(self, rng):
        models = [random_model(rng, 4, 5) for _ in range(2)]
        cp = plan_concurrent(models)
        merged = merge_models(models)
        # Re-evaluating the concatenated assignment on the merged model
        # must give the same makespan.
        dest = np.concatenate([p.dest for p in cp.plans])
        assert merged.evaluate(dest).cct == pytest.approx(cp.makespan_seconds)

    def test_strategy_label(self, rng):
        cp = plan_concurrent([random_model(rng, 3, 2)], strategy="mini")
        assert cp[0].strategy == "mini-concurrent"
