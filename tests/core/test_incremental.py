"""Tests: the streaming planner reproduces Algorithm 1 exactly."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.incremental import IncrementalPlanner
from repro.core.model import ShuffleModel
from tests.conftest import random_model


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_sorted_feed_matches_batch_heuristic(self, seed):
        rng = np.random.default_rng(seed)
        m = random_model(rng, 5, 12)
        batch = ccf_heuristic(m)

        planner = IncrementalPlanner(n_nodes=5)
        order = np.argsort(-m.h.max(axis=0), kind="stable")
        streamed = np.empty(12, dtype=np.int64)
        for k in order:
            streamed[k] = planner.assign(m.h[:, k])
        np.testing.assert_array_equal(streamed, batch)
        assert planner.bottleneck_bytes == pytest.approx(
            m.evaluate(batch).bottleneck_bytes
        )

    def test_unsorted_feed_matches_unsorted_heuristic(self, rng):
        m = random_model(rng, 4, 10)
        batch = ccf_heuristic(m, sort_partitions=False)
        planner = IncrementalPlanner(n_nodes=4)
        streamed = np.array(
            [planner.assign(m.h[:, k]) for k in range(10)], dtype=np.int64
        )
        np.testing.assert_array_equal(streamed, batch)

    def test_initial_loads_match_v0_model(self, rng):
        h = rng.integers(0, 10, size=(3, 6)).astype(float)
        v0 = np.array([[0.0, 5.0, 0.0], [0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        m = ShuffleModel(h=h, v0=v0, rate=1.0)
        batch = ccf_heuristic(m, sort_partitions=False)
        send0, recv0 = m.initial_loads()
        planner = IncrementalPlanner(
            n_nodes=3, initial_send=send0, initial_recv=recv0
        )
        streamed = np.array(
            [planner.assign(h[:, k]) for k in range(6)], dtype=np.int64
        )
        np.testing.assert_array_equal(streamed, batch)


class TestAPI:
    def test_peek_does_not_commit(self):
        planner = IncrementalPlanner(n_nodes=3)
        col = np.array([4.0, 1.0, 0.0])
        d, t = planner.peek(col)
        assert planner.partitions_assigned == 0
        assert planner.bottleneck_bytes == 0.0
        assert planner.assign(col) == d
        assert planner.bottleneck_bytes == pytest.approx(t)

    def test_loads_are_copies(self):
        planner = IncrementalPlanner(n_nodes=2)
        send, recv = planner.loads()
        send[0] = 99.0
        assert planner.loads()[0][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_nodes"):
            IncrementalPlanner(n_nodes=0)
        with pytest.raises(ValueError, match="initial_send"):
            IncrementalPlanner(n_nodes=2, initial_send=np.ones(3))
        planner = IncrementalPlanner(n_nodes=2)
        with pytest.raises(ValueError, match="shape"):
            planner.assign(np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            planner.assign(np.array([-1.0, 0.0]))

    def test_single_node(self):
        planner = IncrementalPlanner(n_nodes=1)
        assert planner.assign(np.array([5.0])) == 0
        assert planner.bottleneck_bytes == 0.0


class TestAllowedMask:
    def test_forbidden_node_never_chosen(self):
        allowed = np.array([True, False, True])
        planner = IncrementalPlanner(n_nodes=3, allowed=allowed)
        for k in range(20):
            col = np.zeros(3)
            col[k % 3] = 5.0  # locality pull toward every node in turn
            assert planner.assign(col) != 1

    def test_mask_validation(self):
        with pytest.raises(ValueError, match="allowed"):
            IncrementalPlanner(n_nodes=2, allowed=np.array([True]))
        with pytest.raises(ValueError, match="allowed"):
            IncrementalPlanner(n_nodes=2, allowed=np.array([False, False]))

    def test_forbid_and_allow_toggle(self):
        planner = IncrementalPlanner(n_nodes=2)
        planner.forbid(0)
        assert planner.assign(np.array([9.0, 0.0])) == 1
        planner.allow(0)
        # Node 0 holds all 9 bytes locally; locality wins again.
        assert planner.assign(np.array([9.0, 0.0])) == 0
        with pytest.raises(ValueError, match="last allowed"):
            p = IncrementalPlanner(n_nodes=2, allowed=np.array([True, False]))
            p.forbid(0)

    def test_allowed_destinations(self):
        planner = IncrementalPlanner(
            n_nodes=4, allowed=np.array([True, False, True, True])
        )
        mask = planner.allowed_destinations()
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 2, 3])
        mask[1] = True  # a copy: mutating it must not affect the planner
        assert planner.assign(np.array([0.0, 9.0, 0.0, 0.0])) != 1

    def test_matches_heuristic_on_surviving_subset(self, rng):
        # Masking node d must give the same placement as running the
        # unmasked planner on a model whose columns avoid d entirely.
        m = random_model(rng, 4, 8)
        h = m.h.copy()
        h[3, :] = 0.0  # no data originates at the dead node
        masked = IncrementalPlanner(
            n_nodes=4, allowed=np.array([True, True, True, False])
        )
        picks = [masked.assign(h[:, k]) for k in range(8)]
        assert all(p != 3 for p in picks)
