"""Tests: the streaming planner reproduces Algorithm 1 exactly."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.incremental import IncrementalPlanner
from repro.core.model import ShuffleModel
from tests.conftest import random_model


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_sorted_feed_matches_batch_heuristic(self, seed):
        rng = np.random.default_rng(seed)
        m = random_model(rng, 5, 12)
        batch = ccf_heuristic(m)

        planner = IncrementalPlanner(n_nodes=5)
        order = np.argsort(-m.h.max(axis=0), kind="stable")
        streamed = np.empty(12, dtype=np.int64)
        for k in order:
            streamed[k] = planner.assign(m.h[:, k])
        np.testing.assert_array_equal(streamed, batch)
        assert planner.bottleneck_bytes == pytest.approx(
            m.evaluate(batch).bottleneck_bytes
        )

    def test_unsorted_feed_matches_unsorted_heuristic(self, rng):
        m = random_model(rng, 4, 10)
        batch = ccf_heuristic(m, sort_partitions=False)
        planner = IncrementalPlanner(n_nodes=4)
        streamed = np.array(
            [planner.assign(m.h[:, k]) for k in range(10)], dtype=np.int64
        )
        np.testing.assert_array_equal(streamed, batch)

    def test_initial_loads_match_v0_model(self, rng):
        h = rng.integers(0, 10, size=(3, 6)).astype(float)
        v0 = np.array([[0.0, 5.0, 0.0], [0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        m = ShuffleModel(h=h, v0=v0, rate=1.0)
        batch = ccf_heuristic(m, sort_partitions=False)
        send0, recv0 = m.initial_loads()
        planner = IncrementalPlanner(
            n_nodes=3, initial_send=send0, initial_recv=recv0
        )
        streamed = np.array(
            [planner.assign(h[:, k]) for k in range(6)], dtype=np.int64
        )
        np.testing.assert_array_equal(streamed, batch)


class TestAPI:
    def test_peek_does_not_commit(self):
        planner = IncrementalPlanner(n_nodes=3)
        col = np.array([4.0, 1.0, 0.0])
        d, t = planner.peek(col)
        assert planner.partitions_assigned == 0
        assert planner.bottleneck_bytes == 0.0
        assert planner.assign(col) == d
        assert planner.bottleneck_bytes == pytest.approx(t)

    def test_loads_are_copies(self):
        planner = IncrementalPlanner(n_nodes=2)
        send, recv = planner.loads()
        send[0] = 99.0
        assert planner.loads()[0][0] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_nodes"):
            IncrementalPlanner(n_nodes=0)
        with pytest.raises(ValueError, match="initial_send"):
            IncrementalPlanner(n_nodes=2, initial_send=np.ones(3))
        planner = IncrementalPlanner(n_nodes=2)
        with pytest.raises(ValueError, match="shape"):
            planner.assign(np.ones(3))
        with pytest.raises(ValueError, match="non-negative"):
            planner.assign(np.array([-1.0, 0.0]))

    def test_single_node(self):
        planner = IncrementalPlanner(n_nodes=1)
        assert planner.assign(np.array([5.0])) == 0
        assert planner.bottleneck_bytes == 0.0
