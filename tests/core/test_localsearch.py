"""Tests for single-partition-move local search."""

import itertools

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.localsearch import refine_assignment
from repro.core.model import ShuffleModel
from repro.core.strategies import hash_assignment, mini_assignment
from tests.conftest import random_model

#: The adversarial instance hypothesis found, where the greedy (T=19)
#: lands above both Hash and Mini (T=18).
ADVERSARIAL = np.array(
    [
        [17.0, 0.0, 2.0, 0.0],
        [0.0, 17.0, 0.0, 0.0],
        [2.0, 16.0, 17.0, 0.0],
    ]
)


class TestRefinement:
    def test_never_hurts(self, rng):
        for _ in range(10):
            m = random_model(rng, 5, 12)
            dest = rng.integers(0, 5, size=12)
            res = refine_assignment(m, dest)
            assert res.final_t <= res.initial_t + 1e-9
            assert res.final_t == pytest.approx(
                m.evaluate(res.dest).bottleneck_bytes
            )

    def test_input_not_modified(self, rng):
        m = random_model(rng, 4, 8)
        dest = rng.integers(0, 4, size=8)
        before = dest.copy()
        refine_assignment(m, dest)
        np.testing.assert_array_equal(dest, before)

    def test_fixes_the_adversarial_greedy_instance(self):
        m = ShuffleModel(h=ADVERSARIAL.copy(), rate=1.0)
        greedy = ccf_heuristic(m)
        t_greedy = m.evaluate(greedy).bottleneck_bytes
        baseline = min(
            m.evaluate(hash_assignment(m)).bottleneck_bytes,
            m.evaluate(mini_assignment(m)).bottleneck_bytes,
        )
        assert t_greedy > baseline  # the known weakness
        res = refine_assignment(m, greedy)
        assert res.final_t <= baseline + 1e-9
        assert res.moves >= 1

    def test_reaches_local_optimum(self, rng):
        # After refinement, no single move improves: verify exhaustively
        # on a small instance.
        m = random_model(rng, 3, 5)
        res = refine_assignment(m, rng.integers(0, 3, size=5))
        t_star = res.final_t
        for k in range(5):
            for b in range(3):
                cand = res.dest.copy()
                cand[k] = b
                assert m.evaluate(cand).bottleneck_bytes >= t_star - 1e-9

    def test_improvement_metric(self, rng):
        m = random_model(rng, 4, 10)
        # Worst possible start: everything to node 0.
        res = refine_assignment(m, np.zeros(10, dtype=np.int64))
        assert 0 <= res.improvement <= 1
        if res.moves:
            assert res.improvement > 0

    def test_already_optimal_is_noop(self):
        # One node holding everything, assigned to itself: T = 0.
        h = np.zeros((3, 4))
        h[1] = [5.0, 6.0, 7.0, 8.0]
        m = ShuffleModel(h=h, rate=1.0)
        res = refine_assignment(m, np.full(4, 1, dtype=np.int64))
        assert res.moves == 0 and res.final_t == 0.0

    def test_edge_cases(self):
        m = ShuffleModel(h=np.zeros((3, 0)), rate=1.0)
        res = refine_assignment(m, np.zeros(0, dtype=np.int64))
        assert res.moves == 0
        m1 = ShuffleModel(h=np.ones((1, 3)), rate=1.0)
        res1 = refine_assignment(m1, np.zeros(3, dtype=np.int64))
        assert res1.final_t == 0.0

    def test_stays_near_exhaustive_optimum(self, rng):
        # Single-move local optima can sit above the global optimum
        # (improving may need a coordinated swap: observed 1.30x on a
        # random 3x5 instance), but hill climbing from the greedy stays
        # well inside the classical 2x band for makespan-style moves.
        for _ in range(10):
            m = random_model(rng, 3, 5)
            start = ccf_heuristic(m)
            res = refine_assignment(m, start)
            best = min(
                m.evaluate(np.array(d, dtype=np.int64)).bottleneck_bytes
                for d in itertools.product(range(3), repeat=5)
            )
            assert res.final_t <= 1.6 * best + 1e-9
