"""Unit tests for the ShuffleModel (paper model (1)->(3))."""

import numpy as np
import pytest

from repro.core.model import PlanMetrics, ShuffleModel, group_by_destination
from tests.conftest import brute_force_metrics, random_model


class TestConstruction:
    def test_basic(self):
        m = ShuffleModel(h=np.ones((3, 6)), rate=1.0)
        assert m.n == 3 and m.p == 6
        np.testing.assert_allclose(m.partition_sizes, 3.0)
        assert m.total_bytes == 18.0

    def test_rejects_negative_chunks(self):
        with pytest.raises(ValueError, match="non-negative"):
            ShuffleModel(h=np.array([[1.0, -1.0]]))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="2-D"):
            ShuffleModel(h=np.ones(3))
        with pytest.raises(ValueError, match="v0"):
            ShuffleModel(h=np.ones((2, 2)), v0=np.ones((3, 3)))

    def test_rejects_nonzero_v0_diagonal(self):
        v0 = np.ones((2, 2))
        with pytest.raises(ValueError, match="diagonal"):
            ShuffleModel(h=np.ones((2, 2)), v0=v0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError, match="rate"):
            ShuffleModel(h=np.ones((2, 2)), rate=-1.0)

    def test_initial_loads(self):
        v0 = np.array([[0.0, 2.0], [3.0, 0.0]])
        m = ShuffleModel(h=np.zeros((2, 1)), v0=v0)
        send, recv = m.initial_loads()
        np.testing.assert_allclose(send, [2.0, 3.0])
        np.testing.assert_allclose(recv, [3.0, 2.0])


class TestAssignmentValidation:
    def setup_method(self):
        self.m = ShuffleModel(h=np.ones((3, 4)), rate=1.0)

    def test_wrong_length(self):
        with pytest.raises(ValueError, match="shape"):
            self.m.validate_assignment(np.zeros(3, dtype=np.int64))

    def test_float_dtype_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            self.m.validate_assignment(np.zeros(4))

    def test_out_of_range(self):
        with pytest.raises(ValueError, match="values"):
            self.m.validate_assignment(np.array([0, 1, 2, 3]))


class TestGroupByDestination:
    def test_matches_loop(self, rng):
        h = rng.integers(0, 9, size=(5, 17)).astype(float)
        dest = rng.integers(0, 5, size=17)
        out = group_by_destination(h, dest)
        ref = np.zeros((5, 5))
        for k in range(17):
            ref[:, dest[k]] += h[:, k]
        np.testing.assert_allclose(out, ref)

    def test_empty_partitions(self):
        out = group_by_destination(np.zeros((3, 0)), np.zeros(0, dtype=np.int64))
        np.testing.assert_allclose(out, np.zeros((3, 3)))

    def test_all_to_one_destination(self):
        h = np.arange(9, dtype=float).reshape(3, 3)
        out = group_by_destination(h, np.array([1, 1, 1]))
        np.testing.assert_allclose(out[:, 1], h.sum(axis=1))
        assert out[:, 0].sum() == 0 and out[:, 2].sum() == 0


class TestEvaluate:
    def test_matches_brute_force(self, rng):
        for _ in range(20):
            m = random_model(rng, 5, 9, with_v0=True)
            dest = rng.integers(0, 5, size=9)
            got = m.evaluate(dest)
            traffic, send, recv, t = brute_force_metrics(m.h, dest, m.v0)
            assert got.traffic == pytest.approx(traffic)
            np.testing.assert_allclose(got.send_loads, send)
            np.testing.assert_allclose(got.recv_loads, recv)
            assert got.bottleneck_bytes == pytest.approx(t)

    def test_cct_is_bottleneck_over_rate(self):
        m = ShuffleModel(h=np.array([[0.0, 4.0], [6.0, 0.0]]), rate=2.0)
        metrics = m.evaluate(np.array([0, 1]))
        # Everything moves: node1 sends 6 to node0, node0 sends 4 to node1.
        assert metrics.bottleneck_bytes == 6.0
        assert metrics.cct == 3.0

    def test_local_bytes_includes_preprocessing(self):
        m = ShuffleModel(h=np.array([[5.0], [0.0]]), local_bytes_pre=7.0, rate=1.0)
        metrics = m.evaluate(np.array([0]))
        assert metrics.local_bytes == 12.0
        assert metrics.traffic == 0.0

    def test_summary_renders(self):
        m = ShuffleModel(h=np.ones((2, 2)) * 1e9, rate=1e9)
        s = m.evaluate(np.array([0, 1])).summary()
        assert "traffic" in s and "CCT" in s


class TestCoflowExport:
    def test_to_coflow_volume_matches(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        cf = small_model.to_coflow(dest)
        assert cf.total_volume == pytest.approx(
            small_model.evaluate(dest).traffic
        )

    def test_coflow_bottleneck_matches_cct(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        cf = small_model.to_coflow(dest)
        assert cf.bottleneck(small_model.n, small_model.rate) == pytest.approx(
            small_model.evaluate(dest).cct
        )


class TestBounds:
    def test_traffic_lower_bound_achieved_by_mini(self, rng):
        from repro.core.strategies import mini_assignment

        m = random_model(rng, 4, 10)
        dest = mini_assignment(m)
        assert m.evaluate(dest).traffic == pytest.approx(m.traffic_lower_bound())

    def test_traffic_lower_bound_is_lower(self, rng):
        m = random_model(rng, 4, 10)
        for _ in range(10):
            dest = rng.integers(0, 4, size=10)
            assert m.evaluate(dest).traffic >= m.traffic_lower_bound() - 1e-9

    def test_bottleneck_lower_bound_valid(self, rng):
        m = random_model(rng, 4, 10, with_v0=True)
        lb = m.bottleneck_lower_bound()
        for _ in range(20):
            dest = rng.integers(0, 4, size=10)
            assert m.evaluate(dest).bottleneck_bytes >= lb - 1e-9
