"""Tests for online co-optimization against in-flight shuffles."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.core.model import ShuffleModel
from repro.core.online import InFlightShuffle, OnlineCCF


class TestInFlightShuffle:
    def test_linear_drain(self):
        s = InFlightShuffle(
            submit_time=0.0,
            duration=10.0,
            send_loads=np.array([100.0, 0.0]),
            recv_loads=np.array([0.0, 100.0]),
        )
        send, recv = s.residual(5.0)
        assert send[0] == pytest.approx(50.0)
        assert recv[1] == pytest.approx(50.0)
        assert s.residual(10.0)[0][0] == 0.0
        assert not s.finished(9.9)
        assert s.finished(10.0)

    def test_zero_duration(self):
        s = InFlightShuffle(0.0, 0.0, np.zeros(2), np.zeros(2))
        assert s.finished(0.0)


class TestOnlineCCF:
    def make_hot_model(self, volume=100.0):
        """A shuffle with unavoidable traffic: each partition is split
        across two nodes, so whatever the destination, half of it moves."""
        h = np.zeros((3, 2))
        h[0, :] = volume / 4
        h[1, :] = volume / 4
        return ShuffleModel(h=h, rate=1.0)

    def test_idle_fabric_matches_offline(self):
        m = self.make_hot_model()
        online = OnlineCCF(n_nodes=3)
        plan_online = online.submit(m, time=0.0)
        plan_offline = CCF().plan(m, "ccf")
        np.testing.assert_array_equal(plan_online.dest, plan_offline.dest)

    def test_residuals_accumulate_and_drain(self):
        online = OnlineCCF(n_nodes=3)
        m = self.make_hot_model()
        online.submit(m, time=0.0)
        send0, recv0 = online.residual_loads(0.0)
        assert send0.sum() + recv0.sum() > 0
        dur = online._history[0].duration
        send_end, recv_end = online.residual_loads(dur + 1.0)
        assert send_end.sum() == 0.0 and recv_end.sum() == 0.0
        assert online.in_flight(dur + 1.0) == []

    def test_planner_avoids_occupied_port(self):
        # Job A pins heavy traffic into node 2.  While A is in flight,
        # job B (whose data is symmetric between receiving at node 1 or 2)
        # must be steered away from node 2.
        online = OnlineCCF(n_nodes=3)
        a = ShuffleModel(h=np.array([[200.0], [0.0], [0.0]]), rate=1.0)
        # Force A's partition to node 2 by submitting with 'hash'-like
        # model: actually Algorithm 1 would keep it local; use mini on a
        # crafted matrix where node 2 holds the largest chunk.
        a = ShuffleModel(
            h=np.array([[90.0], [0.0], [100.0]]), rate=1.0
        )
        plan_a = online.submit(a, time=0.0, strategy="mini")
        assert plan_a.dest[0] == 2  # node 2 now ingests 90 bytes

        b = ShuffleModel(
            h=np.array([[50.0, 50.0], [0.0, 0.0], [0.0, 0.0]]), rate=1.0
        )
        plan_b = online.submit(b, time=1.0)
        assert 2 not in plan_b.dest.tolist()

        # An oblivious planner has no reason to avoid node 2.
        oblivious = CCF().plan(b, "ccf")
        occupied_loads = online.residual_loads(1.0)
        assert occupied_loads[1][2] > 0  # node 2 still receiving A's bytes

    def test_time_ordering_enforced(self):
        online = OnlineCCF(n_nodes=3)
        online.submit(self.make_hot_model(), time=5.0)
        with pytest.raises(ValueError, match="time-ordered"):
            online.submit(self.make_hot_model(), time=1.0)

    def test_node_count_mismatch(self):
        online = OnlineCCF(n_nodes=4)
        with pytest.raises(ValueError, match="nodes"):
            online.submit(self.make_hot_model(), time=0.0)

    def test_reset(self):
        online = OnlineCCF(n_nodes=3)
        online.submit(self.make_hot_model(), time=0.0)
        online.reset()
        assert online.in_flight(0.0) == []
        online.submit(self.make_hot_model(), time=0.0)  # re-allowed at t=0

    def test_invalid_fabric_size(self):
        with pytest.raises(ValueError):
            OnlineCCF(n_nodes=0)

    def test_occupied_model_preserves_constraint_values(self):
        # The extra-load vectors must reproduce the residual port loads
        # exactly in the model's initial loads.
        online = OnlineCCF(n_nodes=3)
        m = self.make_hot_model()
        online.submit(m, time=0.0)
        send, recv = online.residual_loads(0.0)
        occ = online._occupied_model(
            ShuffleModel(h=np.zeros((3, 1)), rate=1.0), 0.0
        )
        send_occ, recv_occ = occ.initial_loads()
        np.testing.assert_allclose(send_occ, send)
        np.testing.assert_allclose(recv_occ, recv)

    def test_extra_loads_raise_plan_bottleneck(self):
        base = ShuffleModel(h=np.array([[10.0, 0.0], [0.0, 10.0]]), rate=1.0)
        loaded = ShuffleModel(
            h=base.h.copy(),
            rate=1.0,
            extra_recv=np.array([0.0, 25.0]),
        )
        dest = np.array([1, 0], dtype=np.int64)  # both chunks move
        assert loaded.evaluate(dest).bottleneck_bytes == pytest.approx(35.0)
        assert base.evaluate(dest).bottleneck_bytes == pytest.approx(10.0)


class TestHistoryPruning:
    """The drained-shuffle prune that bounds service-mode memory."""

    def hot(self):
        h = np.zeros((3, 2))
        h[0, :] = 25.0
        h[1, :] = 25.0
        return ShuffleModel(h=h, rate=1.0)

    def test_long_run_stays_bounded(self):
        online = OnlineCCF(n_nodes=3)
        n = OnlineCCF._PRUNE_THRESHOLD + 50
        # Each submission is spaced far past the previous duration, so
        # by the time the prune scan runs everything old has drained.
        for i in range(n):
            online.submit(self.hot(), time=i * 1e4)
        assert online.drained_shuffles > 0
        assert len(online._history) < OnlineCCF._PRUNE_THRESHOLD
        # Accounting identity: nothing is lost, only moved to the counter.
        assert len(online._history) + online.drained_shuffles == n

    def test_prune_never_changes_residuals(self):
        # Two trackers fed the same stream; one is forced to prune by a
        # tiny threshold.  Residual loads (what the planner sees) agree.
        eager = OnlineCCF(n_nodes=3)
        eager._PRUNE_THRESHOLD = 2
        lazy = OnlineCCF(n_nodes=3)
        times = [0.0, 1.0, 2.0, 100.0, 101.0, 102.0]
        for t in times:
            eager.submit(self.hot(), time=t)
            lazy.submit(self.hot(), time=t)
        now = times[-1]
        np.testing.assert_allclose(
            eager.residual_loads(now)[0], lazy.residual_loads(now)[0]
        )
        np.testing.assert_allclose(
            eager.residual_loads(now)[1], lazy.residual_loads(now)[1]
        )
        assert eager.drained_shuffles > 0
        assert len(eager.in_flight(now)) == len(lazy.in_flight(now))

    def test_reset_zeroes_the_counter(self):
        online = OnlineCCF(n_nodes=3)
        online._PRUNE_THRESHOLD = 1
        online.submit(self.hot(), time=0.0)
        online.submit(self.hot(), time=1e4)
        assert online.drained_shuffles > 0
        online.reset()
        assert online.drained_shuffles == 0
        assert online._history == []
