"""Tests for the supervised-execution primitives (repro.core.resilience)."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resilience import (
    Backoff,
    BudgetExceeded,
    CacheCorruption,
    CellTimeout,
    Deadline,
    ResilienceError,
    StallDetector,
    StallError,
    WorkerCrash,
    crash_report,
    retry_call,
    run_with_timeout,
    write_crash_report,
)


class TestErrorTaxonomy:
    def test_hierarchy(self):
        # Everything is a RuntimeError so pre-taxonomy call sites keep
        # working; CellTimeout is a budget breach by nature.
        for cls in (StallError, BudgetExceeded, WorkerCrash, CacheCorruption):
            assert issubclass(cls, ResilienceError)
            assert issubclass(cls, RuntimeError)
        assert issubclass(CellTimeout, BudgetExceeded)

    def test_report_survives_pickling(self):
        # Worker -> parent transport: the pool pickles exceptions.
        err = StallError("stuck", report={"context": {"t": 1.5}})
        back = pickle.loads(pickle.dumps(err))
        assert isinstance(back, StallError)
        assert str(back) == "stuck"
        assert back.report == {"context": {"t": 1.5}}

    def test_report_defaults_to_none(self):
        assert BudgetExceeded("over").report is None


class TestBackoff:
    def test_validation(self):
        with pytest.raises(ValueError):
            Backoff(max_attempts=0)
        with pytest.raises(ValueError):
            Backoff(base_delay=-1.0)
        with pytest.raises(ValueError):
            Backoff(multiplier=0.5)
        with pytest.raises(ValueError):
            Backoff(jitter=1.0)
        with pytest.raises(ValueError):
            Backoff(base_delay=5.0, max_delay=1.0)

    def test_deterministic(self):
        a = Backoff(seed=7)
        b = Backoff(seed=7)
        assert list(a.delays()) == list(b.delays())
        c = Backoff(seed=8)
        assert list(a.delays()) != list(c.delays())

    @given(
        max_attempts=st.integers(1, 12),
        base=st.floats(0.0, 10.0, allow_nan=False),
        mult=st.floats(1.0, 4.0, allow_nan=False),
        extra=st.floats(0.0, 100.0, allow_nan=False),
        jitter=st.floats(0.0, 0.99, allow_nan=False),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=200, deadline=None)
    def test_properties(self, max_attempts, base, mult, extra, jitter, seed):
        policy = Backoff(
            max_attempts=max_attempts,
            base_delay=base,
            multiplier=mult,
            max_delay=base + extra,
            jitter=jitter,
            seed=seed,
        )
        delays = list(policy.delays())
        # Bounded attempts: exactly max_attempts - 1 retry delays.
        assert len(delays) == max_attempts - 1
        schedule = [policy.base_schedule(k) for k in range(1, max_attempts)]
        # The un-jittered schedule is monotone non-decreasing and capped.
        assert all(a <= b for a, b in zip(schedule, schedule[1:]))
        assert all(s <= policy.max_delay for s in schedule)
        # Jitter stays within its amplitude around the base schedule.
        for d, s in zip(delays, schedule):
            assert (1 - jitter) * s - 1e-12 <= d <= (1 + jitter) * s + 1e-12

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            Backoff().base_schedule(0)

    def test_golden_jitter_sequences(self):
        """Pinned delay sequences: the hash-derived jitter is part of the
        reproducibility contract (service deferrals replay bit-for-bit),
        so a change to the jitter derivation must fail loudly here."""
        a = Backoff(
            max_attempts=5, base_delay=0.5, multiplier=2.0,
            max_delay=30.0, jitter=0.1, seed=0,
        )
        assert list(a.delays()) == pytest.approx(
            [0.50711442676, 0.977965347008, 1.993866726139, 4.153213699613]
        )
        b = Backoff(
            max_attempts=6, base_delay=1.0, multiplier=3.0,
            max_delay=10.0, jitter=0.25, seed=42,
        )
        assert list(b.delays()) == pytest.approx(
            [1.072051952799, 2.523315476325, 6.880743620149,
             8.959171256009, 8.357291407044]
        )
        # The jittered delays stay inside the clamp's jitter envelope.
        assert all(d <= 10.0 * 1.25 for d in b.delays())


class TestRetryCall:
    def test_retries_until_success(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        out = retry_call(
            flaky,
            policy=Backoff(max_attempts=5, base_delay=0.01, seed=1),
            sleep=slept.append,
        )
        assert out == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_exhausted_attempts_raise_last_error(self):
        def always():
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            retry_call(
                always,
                policy=Backoff(max_attempts=3, base_delay=0.0),
                sleep=lambda s: None,
            )

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise TypeError("bug, not transience")

        with pytest.raises(TypeError):
            retry_call(
                bad,
                policy=Backoff(max_attempts=5, base_delay=0.0),
                retry_on=(OSError,),
                sleep=lambda s: None,
            )
        assert len(calls) == 1

    def test_keyboard_interrupt_never_retried(self):
        calls = []

        def interrupted():
            calls.append(1)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            retry_call(interrupted, sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_observer(self):
        seen = []

        def flaky():
            if not seen:
                raise OSError("once")
            return 42

        retry_call(
            flaky,
            policy=Backoff(max_attempts=2, base_delay=0.0),
            sleep=lambda s: None,
            on_retry=lambda attempt, err, delay: seen.append(
                (attempt, type(err).__name__)
            ),
        )
        assert seen == [(1, "OSError")]


class TestDeadline:
    def test_unlimited(self):
        d = Deadline(None)
        assert d.remaining() == float("inf")
        d.check()  # never raises

    def test_expiry(self):
        now = [0.0]
        d = Deadline(2.0, clock=lambda: now[0])
        d.check()
        now[0] = 1.9
        assert not d.expired
        d.check()
        now[0] = 2.5
        assert d.expired
        with pytest.raises(BudgetExceeded, match="wall-clock budget"):
            d.check("the sweep")

    def test_validation(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestStallDetector:
    def test_trips_after_consecutive_stalls(self):
        det = StallDetector(3)
        assert not det.observe(0.0)  # first observation sets the baseline
        assert not det.observe(0.0)
        assert not det.observe(0.0)
        assert det.observe(0.0)  # third consecutive no-progress epoch

    def test_progress_resets_counter(self):
        det = StallDetector(2)
        det.observe(0.0)
        det.observe(0.0)
        assert not det.observe(1.0)  # clock advanced: reset
        det.observe(1.0)
        assert det.observe(1.0)

    def test_stall_then_recover_then_stall(self):
        # One shy of the bound, recover, and the full budget is back.
        det = StallDetector(3)
        det.observe(0.0)
        for _ in range(2):  # max_stalled - 1 no-progress epochs
            assert not det.observe(0.0)
        assert det.stalled == 2
        assert not det.observe(5.0)  # progress
        assert det.stalled == 0
        for _ in range(2):
            assert not det.observe(5.0)
        assert det.observe(5.0)  # stalls again: trips at the full bound

    def test_validation(self):
        with pytest.raises(ValueError):
            StallDetector(0)


class TestRunWithTimeout:
    def test_fast_call_passes_through(self):
        assert run_with_timeout(lambda x: x + 1, 5.0, 41) == 42

    def test_none_disables(self):
        assert run_with_timeout(lambda: "ok", None) == "ok"

    def test_slow_call_times_out(self):
        import time as _time

        with pytest.raises(CellTimeout, match="timeout"):
            run_with_timeout(_time.sleep, 0.05, 5.0, what="sleepy cell")

    def test_alarm_restored_after_call(self):
        import signal as _signal

        before = _signal.getsignal(_signal.SIGALRM)
        run_with_timeout(lambda: None, 5.0)
        assert _signal.getsignal(_signal.SIGALRM) is before

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            run_with_timeout(lambda: None, -1.0)


class TestCrashReport:
    def test_structure(self):
        report = crash_report(
            StallError("frozen"),
            context={"sim_time": 3.5, "active_coflows": [1, 2]},
            events=[{"kind": "epoch", "t": float(i)} for i in range(80)],
            max_events=10,
        )
        assert report["kind"] == "crash_report"
        assert report["error"] == {"type": "StallError", "message": "frozen"}
        assert report["context"]["sim_time"] == 3.5
        assert "version" in report["header"]
        assert report["events_total"] == 80
        assert len(report["last_events"]) == 10
        assert report["last_events"][-1]["t"] == 79.0

    def test_write_is_json_and_collision_free(self, tmp_path):
        report = crash_report(BudgetExceeded("over"), context={})
        import json

        p1 = write_crash_report(report, tmp_path / "crashes")
        p2 = write_crash_report(report, tmp_path / "crashes")
        assert p1 != p2
        for p in (p1, p2):
            doc = json.loads(p.read_text())
            assert doc["error"]["type"] == "BudgetExceeded"
