"""Unit tests for Algorithm 1 (vectorized and reference implementations)."""

import itertools

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic, ccf_heuristic_reference
from repro.core.model import ShuffleModel
from repro.core.strategies import hash_assignment, mini_assignment
from tests.conftest import random_model


def optimal_bottleneck(model: ShuffleModel) -> float:
    """Exhaustive optimum for tiny instances."""
    best = np.inf
    for dest in itertools.product(range(model.n), repeat=model.p):
        t = model.evaluate(np.array(dest, dtype=np.int64)).bottleneck_bytes
        best = min(best, t)
    return best


class TestVectorizedMatchesReference:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("flags", [(True, True), (True, False),
                                       (False, True), (False, False)])
    def test_same_assignment(self, seed, flags):
        rng = np.random.default_rng(seed)
        m = random_model(rng, 4, 8)
        sort_p, loc = flags
        fast = ccf_heuristic(m, sort_partitions=sort_p, locality_tiebreak=loc)
        slow = ccf_heuristic_reference(
            m, sort_partitions=sort_p, locality_tiebreak=loc
        )
        np.testing.assert_array_equal(fast, slow)

    def test_same_assignment_with_initial_flows(self):
        rng = np.random.default_rng(99)
        m = random_model(rng, 3, 6, with_v0=True)
        np.testing.assert_array_equal(
            ccf_heuristic(m), ccf_heuristic_reference(m)
        )

    def test_same_assignment_sparse(self):
        rng = np.random.default_rng(5)
        m = random_model(rng, 5, 10, sparse=0.6)
        np.testing.assert_array_equal(
            ccf_heuristic(m), ccf_heuristic_reference(m)
        )


class TestQuality:
    def test_beats_or_matches_hash_and_mini_on_paper_workload(self):
        from repro.workloads.analytic import AnalyticJoinWorkload

        wl = AnalyticJoinWorkload(n_nodes=30, scale_factor=3.0)
        m = wl.shuffle_model(skew_handling=True)
        t_ccf = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
        t_hash = m.evaluate(hash_assignment(m)).bottleneck_bytes
        t_mini = m.evaluate(mini_assignment(m)).bottleneck_bytes
        assert t_ccf <= t_hash + 1e-6
        assert t_ccf <= t_mini + 1e-6

    def test_near_optimal_on_tiny_instances(self):
        # Greedy is not optimal in general, but must stay within 2x of the
        # exhaustive optimum on small random instances (empirically it is
        # almost always exactly optimal).
        rng = np.random.default_rng(17)
        for _ in range(10):
            m = random_model(rng, 3, 5)
            t_h = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
            t_star = optimal_bottleneck(m)
            assert t_h <= 2 * t_star + 1e-9

    def test_respects_lower_bound(self, rng):
        m = random_model(rng, 6, 20, with_v0=True)
        t = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
        assert t >= m.bottleneck_lower_bound() - 1e-9

    def test_locality_tiebreak_never_hurts_traffic(self):
        rng = np.random.default_rng(23)
        for _ in range(5):
            m = random_model(rng, 5, 12, sparse=0.4)
            with_loc = m.evaluate(
                ccf_heuristic(m, locality_tiebreak=True)
            )
            without = m.evaluate(
                ccf_heuristic(m, locality_tiebreak=False)
            )
            # Same traffic or better, without a worse bottleneck.
            assert with_loc.traffic <= without.traffic + 1e-9


class TestEdgeCases:
    def test_zero_partitions(self):
        m = ShuffleModel(h=np.zeros((3, 0)), rate=1.0)
        assert ccf_heuristic(m).shape == (0,)
        assert ccf_heuristic_reference(m).shape == (0,)

    def test_single_node_all_local(self):
        m = ShuffleModel(h=np.ones((1, 5)), rate=1.0)
        dest = ccf_heuristic(m)
        np.testing.assert_array_equal(dest, np.zeros(5, dtype=np.int64))
        assert m.evaluate(dest).traffic == 0.0

    def test_single_partition_goes_to_dominant_holder(self):
        h = np.array([[10.0], [1.0], [1.0]])
        m = ShuffleModel(h=h, rate=1.0)
        dest = ccf_heuristic(m)
        assert dest[0] == 0  # keeping the 10-byte chunk local minimizes T

    def test_all_zero_chunks(self):
        m = ShuffleModel(h=np.zeros((3, 4)), rate=1.0)
        dest = ccf_heuristic(m)
        assert m.evaluate(dest).bottleneck_bytes == 0.0

    def test_deterministic(self, rng):
        m = random_model(rng, 5, 15)
        a = ccf_heuristic(m)
        b = ccf_heuristic(m)
        np.testing.assert_array_equal(a, b)


class TestSorting:
    def test_sorted_order_processes_big_chunks_first(self):
        # A partition with one huge chunk must be pinned to its holder
        # before small partitions congest that node's receive side.
        h = np.array(
            [
                [100.0, 5.0, 5.0, 5.0],
                [0.0, 5.0, 5.0, 5.0],
                [0.0, 5.0, 5.0, 5.0],
            ]
        )
        m = ShuffleModel(h=h, rate=1.0)
        sorted_t = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
        unsorted_t = m.evaluate(
            ccf_heuristic(m, sort_partitions=False)
        ).bottleneck_bytes
        assert sorted_t <= unsorted_t + 1e-9
