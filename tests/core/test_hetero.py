"""Tests for heterogeneous-port-rate planning and evaluation."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.model import ShuffleModel
from repro.network.fabric import Fabric
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from tests.conftest import random_model


class TestCctHetero:
    def test_uniform_rates_match_cct(self, rng):
        m = random_model(rng, 4, 8, rate=2.0)
        dest = rng.integers(0, 4, size=8)
        rates = np.full(4, 2.0)
        assert m.cct_hetero(dest, rates, rates) == pytest.approx(
            m.evaluate(dest).cct
        )

    def test_slow_port_dominates(self):
        m = ShuffleModel(h=np.array([[10.0], [0.0]]), rate=1.0)
        dest = np.array([1])
        # Ingress at node 1 is 4x slower than egress at node 0.
        cct = m.cct_hetero(dest, np.array([1.0, 1.0]), np.array([1.0, 0.25]))
        assert cct == pytest.approx(40.0)

    def test_matches_simulator_with_hetero_fabric(self, rng):
        m = random_model(rng, 4, 8, rate=1.0)
        dest = ccf_heuristic(m)
        egress = np.array([1.0, 0.5, 2.0, 1.0])
        ingress = np.array([2.0, 1.0, 1.0, 0.5])
        expected = m.cct_hetero(dest, egress, ingress)
        cf = m.to_coflow(dest)
        if cf.width == 0:
            pytest.skip("all-local assignment")
        fab = Fabric(n_ports=4, rate=1.0, egress_rates=egress,
                     ingress_rates=ingress)
        res = CoflowSimulator(fab, make_scheduler("sebf")).run([cf])
        assert res.max_cct == pytest.approx(expected)

    def test_validation(self, rng):
        m = random_model(rng, 3, 4)
        dest = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError, match="shape"):
            m.cct_hetero(dest, np.ones(2), np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            m.cct_hetero(dest, np.zeros(3), np.ones(3))


class TestHeteroHeuristic:
    def test_uniform_rates_identical_assignment(self, rng):
        m = random_model(rng, 5, 12, rate=1.0)
        plain = ccf_heuristic(m)
        scaled = ccf_heuristic(
            m,
            egress_rates=np.full(5, 1.0),
            ingress_rates=np.full(5, 1.0),
        )
        np.testing.assert_array_equal(plain, scaled)

    def test_avoids_slow_receiver(self):
        # Two equally good destinations by bytes; node 0's NIC is slow.
        h = np.zeros((3, 1))
        h[2, 0] = 10.0
        m = ShuffleModel(h=h, rate=1.0)
        ingress = np.array([0.1, 1.0, 1.0])
        dest = ccf_heuristic(
            m, egress_rates=np.ones(3), ingress_rates=ingress,
            locality_tiebreak=False,
        )
        # Keeping it local (node 2) is free; that dominates regardless --
        # force movement by zeroing locality: still avoids node 0.
        assert dest[0] != 0

    def test_hetero_beats_byte_scored_on_skewed_rates(self, rng):
        # Node 0 has a 10x slower NIC: byte-scored Algorithm 1 loads it
        # like any other node; rate-aware scoring steers volume away.
        m = random_model(rng, 6, 30, rate=1.0)
        egress = np.ones(6)
        ingress = np.ones(6)
        ingress[0] = 0.1
        plain = ccf_heuristic(m)
        aware = ccf_heuristic(
            m, egress_rates=egress, ingress_rates=ingress
        )
        t_plain = m.cct_hetero(plain, egress, ingress)
        t_aware = m.cct_hetero(aware, egress, ingress)
        assert t_aware <= t_plain + 1e-9

    def test_rate_validation(self, rng):
        m = random_model(rng, 3, 4)
        with pytest.raises(ValueError, match="shape"):
            ccf_heuristic(m, egress_rates=np.ones(2))
        with pytest.raises(ValueError, match="positive"):
            ccf_heuristic(m, ingress_rates=np.zeros(3))
