"""Unit tests for the exact MILP solver (model (3) via HiGHS)."""

import itertools

import numpy as np
import pytest

from repro.core.exact import ccf_exact
from repro.core.heuristic import ccf_heuristic
from repro.core.model import ShuffleModel
from tests.conftest import random_model


def exhaustive_optimum(model: ShuffleModel) -> float:
    best = np.inf
    for dest in itertools.product(range(model.n), repeat=model.p):
        t = model.evaluate(np.array(dest, dtype=np.int64)).bottleneck_bytes
        best = min(best, t)
    return best


class TestOptimality:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exhaustive_on_tiny_instances(self, seed):
        rng = np.random.default_rng(seed)
        m = random_model(rng, 3, 5)
        res = ccf_exact(m)
        achieved = m.evaluate(res.dest).bottleneck_bytes
        assert achieved == pytest.approx(exhaustive_optimum(m))
        # Objective value agrees with the achieved T (T* is tight).
        assert res.bottleneck_bytes == pytest.approx(achieved)

    def test_with_initial_flows(self):
        rng = np.random.default_rng(11)
        m = random_model(rng, 3, 4, with_v0=True)
        res = ccf_exact(m)
        assert m.evaluate(res.dest).bottleneck_bytes == pytest.approx(
            exhaustive_optimum(m)
        )

    def test_never_worse_than_heuristic(self, rng):
        for _ in range(5):
            m = random_model(rng, 4, 8)
            t_exact = m.evaluate(ccf_exact(m).dest).bottleneck_bytes
            t_heur = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
            assert t_exact <= t_heur + 1e-6

    def test_motivating_example_optimum_is_three(self):
        from repro.experiments.motivating import EXAMPLE_CHUNKS

        m = ShuffleModel(h=EXAMPLE_CHUNKS.copy(), rate=1.0)
        res = ccf_exact(m)
        assert m.evaluate(res.dest).bottleneck_bytes == pytest.approx(3.0)


class TestGuards:
    def test_variable_limit(self):
        m = ShuffleModel(h=np.ones((10, 10)), rate=1.0)
        with pytest.raises(ValueError, match="max_variables"):
            ccf_exact(m, max_variables=50)

    def test_empty_instance(self):
        m = ShuffleModel(h=np.zeros((3, 0)), rate=1.0)
        res = ccf_exact(m)
        assert res.dest.shape == (0,)
        assert res.bottleneck_bytes == 0.0

    def test_solve_seconds_recorded(self, rng):
        m = random_model(rng, 3, 4)
        res = ccf_exact(m)
        assert res.solve_seconds > 0
        assert isinstance(res.status, str)
