"""Unit tests for partial-duplication skew handling."""

import numpy as np
import pytest

from repro.core.skew import PartialDuplication, detect_skewed_keys


class TestDetection:
    def test_detects_hot_key_from_dict(self):
        counts = {k: 10 for k in range(100)}
        counts[1] = 100_000
        skewed = detect_skewed_keys(counts, factor=100.0)
        assert skewed.tolist() == [1]

    def test_detects_from_array(self):
        counts = np.full(50, 10)
        counts[7] = 1_000_000
        assert detect_skewed_keys(counts, factor=100.0).tolist() == [7]

    def test_uniform_has_no_skew(self):
        counts = {k: 10 for k in range(100)}
        assert detect_skewed_keys(counts, factor=10.0).size == 0

    def test_empty_counts(self):
        assert detect_skewed_keys({}, factor=10.0).size == 0

    def test_invalid_factor(self):
        with pytest.raises(ValueError, match="factor"):
            detect_skewed_keys({1: 1}, factor=0.0)

    def test_multiple_hot_keys_sorted(self):
        counts = {k: 1 for k in range(1000)}
        counts[42] = 10_000
        counts[7] = 10_000
        assert detect_skewed_keys(counts, factor=100.0).tolist() == [7, 42]


class TestPartialDuplication:
    def setup_method(self):
        self.h_full = np.array(
            [
                [10.0, 100.0],
                [10.0, 50.0],
                [10.0, 0.0],
            ]
        )

    def test_residual_matrix(self):
        h_skew = np.zeros_like(self.h_full)
        h_skew[:, 1] = [90.0, 45.0, 0.0]
        res = PartialDuplication().apply(self.h_full, h_skew_local=h_skew)
        np.testing.assert_allclose(
            res.model.h, [[10.0, 10.0], [10.0, 5.0], [10.0, 0.0]]
        )
        assert res.local_bytes == 135.0
        assert res.model.local_bytes_pre == 135.0
        assert res.broadcast_traffic == 0.0

    def test_broadcast_initial_flows(self):
        h_bcast = np.zeros_like(self.h_full)
        h_bcast[0, 0] = 6.0  # node 0 holds 6 bytes of the hot small side
        res = PartialDuplication().apply(self.h_full, h_broadcast=h_bcast)
        v0 = res.model.v0
        # Node 0 broadcasts 6 bytes to nodes 1 and 2, nothing else.
        np.testing.assert_allclose(v0[0], [0.0, 6.0, 6.0])
        np.testing.assert_allclose(v0[1], 0.0)
        assert res.broadcast_traffic == 12.0
        assert res.model.h[0, 0] == 4.0

    def test_rejects_oversubtraction(self):
        h_skew = self.h_full + 1.0
        with pytest.raises(ValueError, match="exceed"):
            PartialDuplication().apply(self.h_full, h_skew_local=h_skew)

    def test_rejects_negative_matrices(self):
        bad = np.zeros_like(self.h_full)
        bad[0, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            PartialDuplication().apply(self.h_full, h_broadcast=bad)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            PartialDuplication().apply(self.h_full, h_skew_local=np.zeros((2, 2)))

    def test_noop_without_skew(self):
        res = PartialDuplication().apply(self.h_full)
        np.testing.assert_allclose(res.model.h, self.h_full)
        assert res.local_bytes == 0.0

    def test_rate_passthrough(self):
        res = PartialDuplication().apply(self.h_full, rate=1.0)
        assert res.model.rate == 1.0

    def test_skew_handling_reduces_bottleneck_on_hot_partition(self):
        # All the hot partition's bytes sit on node 0; without handling
        # they must move wherever partition 1 is assigned (or pin node 0).
        from repro.core.heuristic import ccf_heuristic

        h = np.array([[5.0, 500.0], [5.0, 400.0], [5.0, 100.0]])
        raw = PartialDuplication().apply(h)
        skew = np.zeros_like(h)
        skew[:, 1] = [500.0, 400.0, 100.0]
        handled = PartialDuplication().apply(h, h_skew_local=skew)
        t_raw = raw.model.evaluate(ccf_heuristic(raw.model)).bottleneck_bytes
        t_handled = handled.model.evaluate(
            ccf_heuristic(handled.model)
        ).bottleneck_bytes
        assert t_handled < t_raw
