"""Unit tests for the CCF framework front-end and plan comparison."""

import numpy as np
import pytest

from repro.core.framework import CCF, DEFAULT_STRATEGIES, PlanComparison
from repro.core.model import ShuffleModel
from repro.workloads.analytic import AnalyticJoinWorkload


@pytest.fixture
def workload():
    return AnalyticJoinWorkload(n_nodes=10, scale_factor=0.5)


class TestPlan:
    def test_plan_on_raw_model(self, small_model):
        plan = CCF().plan(small_model, "ccf")
        assert plan.strategy == "ccf"
        assert plan.dest.shape == (small_model.p,)
        assert plan.solve_seconds >= 0

    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf", "ccf-exact"])
    def test_all_strategies_produce_valid_plans(self, strategy):
        wl = AnalyticJoinWorkload(n_nodes=4, partitions=12, scale_factor=0.01)
        plan = CCF().plan(wl, strategy)
        assert plan.dest.shape == (12,)
        assert ((plan.dest >= 0) & (plan.dest < 4)).all()

    def test_unknown_strategy_rejected(self, small_model):
        with pytest.raises(ValueError, match="unknown strategy"):
            CCF().plan(small_model, "magic")


class TestSkewHandlingSemantics:
    def test_hash_uses_raw_model(self, workload):
        ccf = CCF(skew_handling=True)
        model = ccf.model_for(workload, "hash")
        # Raw model: no initial flows, no pre-pinned local bytes.
        assert model.v0.sum() == 0.0
        assert model.local_bytes_pre == 0.0

    def test_ccf_uses_skew_handled_model(self, workload):
        ccf = CCF(skew_handling=True)
        model = ccf.model_for(workload, "ccf")
        assert model.local_bytes_pre > 0.0  # skewed ORDERS pinned local
        assert model.v0.sum() > 0.0  # broadcast initial flows

    def test_skew_handling_disabled_globally(self, workload):
        ccf = CCF(skew_handling=False)
        model = ccf.model_for(workload, "ccf")
        assert model.local_bytes_pre == 0.0

    def test_model_passthrough(self, small_model):
        assert CCF().model_for(small_model, "ccf") is small_model


class TestCompare:
    def test_default_strategies(self, workload):
        cmp = CCF().compare(workload)
        assert set(cmp.strategies) == set(DEFAULT_STRATEGIES)

    def test_ccf_wins_on_paper_workload(self, workload):
        cmp = CCF().compare(workload)
        assert cmp.cct("ccf") <= cmp.cct("hash") + 1e-9
        assert cmp.cct("ccf") <= cmp.cct("mini") + 1e-9

    def test_mini_moves_least(self, workload):
        cmp = CCF().compare(workload)
        assert cmp.traffic("mini") <= cmp.traffic("hash")
        assert cmp.traffic("mini") <= cmp.traffic("ccf")

    def test_speedup_definition(self, workload):
        cmp = CCF().compare(workload)
        assert cmp.speedup("mini", "ccf") == pytest.approx(
            cmp.cct("mini") / cmp.cct("ccf")
        )

    def test_speedup_infinite_when_fast_is_zero(self):
        model = ShuffleModel(h=np.zeros((2, 2)), rate=1.0)
        cmp = CCF().compare(model, strategies=("hash", "ccf"))
        assert cmp.speedup("hash", "ccf") == float("inf")

    def test_row_has_all_metrics(self, workload):
        row = CCF().compare(workload).row()
        for s in DEFAULT_STRATEGIES:
            assert f"{s}_traffic_gb" in row
            assert f"{s}_cct_s" in row
            assert f"{s}_solve_s" in row

    def test_contains_and_getitem(self, workload):
        cmp = CCF().compare(workload)
        assert "ccf" in cmp
        assert cmp["ccf"].strategy == "ccf"


class TestPlanComparisonStandalone:
    def test_empty(self):
        cmp = PlanComparison()
        assert cmp.strategies == []
        assert "x" not in cmp
