"""Tests for the topology-aware co-optimization extension."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.model import ShuffleModel
from repro.core.topology_aware import (
    ccf_heuristic_topology,
    evaluate_on_topology,
)
from repro.network.topology import TwoLevelTopology
from tests.conftest import random_model


def make_topo(n, per_rack, over=4.0, rate=1.0):
    return TwoLevelTopology(
        n_hosts=n, hosts_per_rack=per_rack, host_rate=rate, oversubscription=over
    )


class TestEvaluateOnTopology:
    def test_matches_flat_model_at_full_bisection_allcross(self, rng):
        # One host per rack: uplink rate == NIC rate, every flow crosses
        # racks, so the topology evaluation equals the flat closed form.
        m = random_model(rng, 6, 12, rate=1.0)
        topo = make_topo(6, 1, over=1.0)
        dest = rng.integers(0, 6, size=12)
        tm = evaluate_on_topology(m, topo, dest)
        assert tm.cct == pytest.approx(m.evaluate(dest).cct)

    def test_oversubscription_inflates(self, rng):
        m = random_model(rng, 6, 12, rate=1.0)
        dest = rng.integers(0, 6, size=12)
        mild = evaluate_on_topology(m, make_topo(6, 3, over=1.0), dest)
        harsh = evaluate_on_topology(m, make_topo(6, 3, over=10.0), dest)
        assert harsh.cct >= mild.cct - 1e-12
        assert harsh.uplink_bound

    def test_intra_rack_assignment_avoids_uplinks(self):
        # Two racks; all data of partition 0 lives in rack 0.  Assigning
        # it within rack 0 keeps the uplinks idle.
        h = np.array([[4.0], [4.0], [0.0], [0.0]])
        m = ShuffleModel(h=h, rate=1.0)
        topo = make_topo(4, 2, over=8.0)
        inside = evaluate_on_topology(m, topo, np.array([0]))
        outside = evaluate_on_topology(m, topo, np.array([2]))
        assert inside.uplink_seconds == 0.0
        assert outside.uplink_seconds > inside.uplink_seconds
        assert outside.cct > inside.cct

    def test_node_count_mismatch_rejected(self, rng):
        m = random_model(rng, 4, 6)
        with pytest.raises(ValueError, match="differ"):
            evaluate_on_topology(m, make_topo(6, 2), np.zeros(6, dtype=np.int64))

    def test_initial_flows_hit_uplinks(self):
        v0 = np.zeros((4, 4))
        v0[0, 2] = 10.0  # rack 0 -> rack 1
        m = ShuffleModel(h=np.zeros((4, 1)), v0=v0, rate=1.0)
        topo = make_topo(4, 2, over=4.0)
        tm = evaluate_on_topology(m, topo, np.array([0]))
        assert tm.uplink_seconds == pytest.approx(10.0 / topo.uplink_rate(0))


class TestTopologyAwareHeuristic:
    def test_matches_flat_heuristic_when_one_host_per_rack(self, rng):
        # Full bisection, one host per rack: rack terms duplicate the NIC
        # terms, so the topology-aware greedy T equals the flat greedy T.
        m = random_model(rng, 5, 10, rate=1.0)
        topo = make_topo(5, 1, over=1.0)
        flat = ccf_heuristic(m, locality_tiebreak=True)
        aware = ccf_heuristic_topology(m, topo)
        t_flat = evaluate_on_topology(m, topo, flat).cct
        t_aware = evaluate_on_topology(m, topo, aware).cct
        assert t_aware == pytest.approx(t_flat)

    def test_beats_flat_heuristic_under_oversubscription(self):
        # Rack-local data: the flat greedy spreads destinations for NIC
        # balance and saturates uplinks; the aware greedy keeps partitions
        # in their racks.
        rng = np.random.default_rng(1)
        n, p = 8, 32
        racks = np.arange(n) // 4
        h = np.zeros((n, p))
        for k in range(p):
            home = k % 2  # partition data concentrated in one rack
            holders = np.flatnonzero(racks == home)
            h[holders, k] = rng.integers(5, 15, holders.size)
        m = ShuffleModel(h=h, rate=1.0)
        topo = make_topo(n, 4, over=8.0)
        flat = ccf_heuristic(m)
        aware = ccf_heuristic_topology(m, topo)
        t_flat = evaluate_on_topology(m, topo, flat).cct
        t_aware = evaluate_on_topology(m, topo, aware).cct
        assert t_aware <= t_flat + 1e-9
        assert evaluate_on_topology(m, topo, aware).uplink_seconds <= \
            evaluate_on_topology(m, topo, flat).uplink_seconds + 1e-9

    def test_incremental_loads_match_evaluation(self, rng):
        # The greedy's final T (recomputed via evaluate) must be a valid
        # assignment with in-range destinations.
        m = random_model(rng, 6, 14, rate=1.0)
        topo = make_topo(6, 2, over=3.0)
        dest = ccf_heuristic_topology(m, topo)
        assert ((dest >= 0) & (dest < 6)).all()
        tm = evaluate_on_topology(m, topo, dest)
        assert tm.cct >= 0

    def test_empty_and_single_node(self):
        m = ShuffleModel(h=np.zeros((1, 3)), rate=1.0)
        topo = make_topo(1, 1)
        np.testing.assert_array_equal(
            ccf_heuristic_topology(m, topo), np.zeros(3, dtype=np.int64)
        )

    def test_mismatch_rejected(self, rng):
        m = random_model(rng, 4, 6)
        with pytest.raises(ValueError, match="differ"):
            ccf_heuristic_topology(m, make_topo(8, 2))
