"""Unit tests for ExecutionPlan."""

import numpy as np
import pytest

from repro.core.plan import ExecutionPlan
from tests.conftest import random_model


class TestExecutionPlan:
    def test_metrics_cached(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        plan = ExecutionPlan(model=small_model, dest=dest)
        assert plan.metrics is plan.metrics

    def test_shortcuts_match_metrics(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        plan = ExecutionPlan(model=small_model, dest=dest)
        m = plan.metrics
        assert plan.traffic == m.traffic
        assert plan.cct == m.cct
        assert plan.bottleneck_bytes == m.bottleneck_bytes

    def test_invalid_dest_rejected_at_construction(self, small_model):
        with pytest.raises(ValueError):
            ExecutionPlan(
                model=small_model,
                dest=np.full(small_model.p, small_model.n, dtype=np.int64),
            )

    def test_to_coflow_inherits_strategy_name(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        plan = ExecutionPlan(model=small_model, dest=dest, strategy="ccf")
        assert plan.to_coflow().name == "ccf"

    def test_to_coflow_arrival(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        plan = ExecutionPlan(model=small_model, dest=dest)
        assert plan.to_coflow(arrival_time=5.0).arrival_time == 5.0

    def test_describe_mentions_strategy_and_time(self, small_model, rng):
        dest = rng.integers(0, small_model.n, size=small_model.p)
        plan = ExecutionPlan(
            model=small_model, dest=dest, strategy="mini", solve_seconds=0.5
        )
        text = plan.describe()
        assert "mini" in text and "500.00 ms" in text
