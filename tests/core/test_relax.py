"""Unit tests for the LP-relaxation + rounding solver."""

import numpy as np
import pytest

from repro.core.exact import ccf_exact
from repro.core.model import ShuffleModel
from repro.core.relax import ccf_lp_rounding
from tests.conftest import random_model


class TestBounds:
    def test_lp_lower_bounds_exact_optimum(self, rng):
        for _ in range(5):
            m = random_model(rng, 4, 8)
            lp = ccf_lp_rounding(m, trials=4)
            exact = ccf_exact(m)
            t_star = m.evaluate(exact.dest).bottleneck_bytes
            assert lp.lp_lower_bound <= t_star + 1e-6
            assert lp.bottleneck_bytes >= t_star - 1e-6

    def test_rounded_t_matches_evaluation(self, rng):
        m = random_model(rng, 4, 10)
        lp = ccf_lp_rounding(m)
        assert lp.bottleneck_bytes == pytest.approx(
            m.evaluate(lp.dest).bottleneck_bytes
        )

    def test_gap_upper_bound_nonnegative(self, rng):
        m = random_model(rng, 5, 12)
        lp = ccf_lp_rounding(m)
        assert lp.gap_upper_bound >= -1e-12


class TestRounding:
    def test_deterministic_given_seed(self, rng):
        m = random_model(rng, 4, 10)
        a = ccf_lp_rounding(m, seed=5)
        b = ccf_lp_rounding(m, seed=5)
        np.testing.assert_array_equal(a.dest, b.dest)

    def test_more_trials_never_worse(self, rng):
        m = random_model(rng, 5, 12)
        few = ccf_lp_rounding(m, trials=1, seed=2)
        many = ccf_lp_rounding(m, trials=32, seed=2)
        assert many.bottleneck_bytes <= few.bottleneck_bytes + 1e-9

    def test_invalid_trials(self, rng):
        with pytest.raises(ValueError, match="trial"):
            ccf_lp_rounding(random_model(rng, 3, 4), trials=0)

    def test_empty_model(self):
        m = ShuffleModel(h=np.zeros((3, 0)), rate=1.0)
        lp = ccf_lp_rounding(m)
        assert lp.dest.shape == (0,)
        assert lp.bottleneck_bytes == 0.0

    def test_with_initial_flows(self, rng):
        m = random_model(rng, 4, 8, with_v0=True)
        lp = ccf_lp_rounding(m)
        exact = ccf_exact(m)
        assert lp.lp_lower_bound <= m.evaluate(exact.dest).bottleneck_bytes + 1e-6

    def test_integral_lp_rounds_exactly(self):
        # When one node holds everything, the LP optimum is integral and
        # rounding must recover it: keep all partitions on node 0.
        h = np.zeros((3, 4))
        h[0] = [10.0, 8.0, 6.0, 4.0]
        m = ShuffleModel(h=h, rate=1.0)
        lp = ccf_lp_rounding(m)
        np.testing.assert_array_equal(lp.dest, 0)
        assert lp.bottleneck_bytes == 0.0
