"""Residual-load (extra_send/extra_recv) integration across all solvers."""

import numpy as np
import pytest

from repro.core.exact import ccf_exact
from repro.core.heuristic import ccf_heuristic, ccf_heuristic_reference
from repro.core.model import ShuffleModel
from repro.core.relax import ccf_lp_rounding


@pytest.fixture
def loaded_model(rng):
    h = rng.integers(0, 12, size=(3, 5)).astype(float)
    return ShuffleModel(
        h=h,
        rate=1.0,
        extra_send=np.array([0.0, 20.0, 0.0]),
        extra_recv=np.array([15.0, 0.0, 0.0]),
    )


class TestValidation:
    def test_shape_checked(self):
        with pytest.raises(ValueError, match="extra_send"):
            ShuffleModel(h=np.ones((2, 2)), extra_send=np.ones(3))

    def test_negativity_checked(self):
        with pytest.raises(ValueError, match="extra_recv"):
            ShuffleModel(h=np.ones((2, 2)), extra_recv=np.array([-1.0, 0.0]))

    def test_defaults_to_zero(self):
        m = ShuffleModel(h=np.ones((2, 2)))
        np.testing.assert_allclose(m.extra_send, 0.0)
        np.testing.assert_allclose(m.extra_recv, 0.0)


class TestSolversSeeLoads:
    def test_evaluate_includes_extras(self, loaded_model):
        dest = np.zeros(5, dtype=np.int64)
        m = loaded_model.evaluate(dest)
        assert m.send_loads[1] >= 20.0
        assert m.recv_loads[0] >= 15.0

    def test_heuristics_agree_with_extras(self, loaded_model):
        np.testing.assert_array_equal(
            ccf_heuristic(loaded_model),
            ccf_heuristic_reference(loaded_model),
        )

    def test_heuristic_steers_away_from_loaded_ports(self):
        # Symmetric data; node 1's egress is busy with 100 bytes of other
        # traffic: the planner must not count on it finishing first.
        h = np.full((3, 3), 5.0)
        busy = ShuffleModel(
            h=h, rate=1.0, extra_recv=np.array([0.0, 100.0, 0.0])
        )
        dest = ccf_heuristic(busy, locality_tiebreak=False)
        assert 1 not in dest.tolist()

    def test_exact_objective_includes_extras(self, loaded_model):
        res = ccf_exact(loaded_model)
        achieved = loaded_model.evaluate(res.dest).bottleneck_bytes
        # T* at least the largest fixed load.
        assert achieved >= 20.0 - 1e-9
        assert res.bottleneck_bytes == pytest.approx(achieved)

    def test_exact_not_above_heuristic_with_extras(self, loaded_model):
        t_exact = loaded_model.evaluate(
            ccf_exact(loaded_model).dest
        ).bottleneck_bytes
        t_heur = loaded_model.evaluate(
            ccf_heuristic(loaded_model)
        ).bottleneck_bytes
        assert t_exact <= t_heur + 1e-6

    def test_lp_bound_respects_extras(self, loaded_model):
        lp = ccf_lp_rounding(loaded_model)
        assert lp.lp_lower_bound >= 20.0 - 1e-6
        t_exact = loaded_model.evaluate(
            ccf_exact(loaded_model).dest
        ).bottleneck_bytes
        assert lp.lp_lower_bound <= t_exact + 1e-6
