"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken one is a broken promise.
Each runs in a subprocess exactly as a user would invoke it.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(ALL_EXAMPLES) >= 3  # deliverable: at least three examples
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"
