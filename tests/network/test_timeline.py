"""Invariants of the recorded simulation timeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix


def run_recorded(coflows, n_ports, scheduler="sebf", rate=1.0):
    sim = CoflowSimulator(
        Fabric(n_ports=n_ports, rate=rate),
        make_scheduler(scheduler),
        record_timeline=True,
    )
    return sim.run(coflows)


class TestTimelineInvariants:
    @given(st.integers(0, 10_000), st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_epochs_tile_the_busy_interval(self, seed, n_coflows):
        cfg = CoflowMixConfig(
            n_ports=8, n_coflows=n_coflows, arrival_rate=3.0, seed=seed
        )
        coflows = generate_coflow_mix(cfg)
        res = run_recorded(coflows, 8, rate=128e6)
        if not res.epochs:
            return
        # Epochs are ordered and never overlap (idle gaps are allowed:
        # the fabric can drain completely before the next arrival).
        for a, b in zip(res.epochs, res.epochs[1:]):
            assert b.start >= a.start + a.duration - 1e-9
        end = res.epochs[-1].start + res.epochs[-1].duration
        assert end == pytest.approx(res.makespan, rel=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_rate_within_capacity(self, seed):
        cfg = CoflowMixConfig(n_ports=6, n_coflows=6, seed=seed)
        coflows = generate_coflow_mix(cfg)
        res = run_recorded(coflows, 6, rate=128e6)
        cap = 6 * 128e6
        for e in res.epochs:
            assert e.aggregate_rate <= cap * (1 + 1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_delivered_bytes_match_total(self, seed):
        cfg = CoflowMixConfig(n_ports=6, n_coflows=8, seed=seed)
        coflows = generate_coflow_mix(cfg)
        res = run_recorded(coflows, 6, rate=128e6)
        delivered = sum(e.duration * e.aggregate_rate for e in res.epochs)
        assert delivered == pytest.approx(res.total_bytes, rel=1e-6)

    def test_active_flow_counts_positive(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(1, 2, 2.0)])
        res = run_recorded([cf], 3)
        for e in res.epochs:
            assert e.active_flows >= 1


def _staggered_coflows():
    """Enough staggered arrivals to produce several epochs."""
    return [
        Coflow([Flow(0, 1, 4.0), Flow(1, 2, 2.0)], 0.0, coflow_id=0),
        Coflow([Flow(2, 0, 3.0)], 1.0, coflow_id=1),
        Coflow([Flow(1, 0, 2.0)], 2.0, coflow_id=2),
    ]


class TestTimelineRingBuffer:
    def run_limited(self, limit):
        sim = CoflowSimulator(
            Fabric(n_ports=3, rate=1.0),
            make_scheduler("sebf"),
            record_timeline=True,
            timeline_limit=limit,
        )
        return sim.run(_staggered_coflows())

    def test_unlimited_is_not_truncated(self):
        full = run_recorded(_staggered_coflows(), 3)
        assert len(full.epochs) >= 3
        assert full.epochs_dropped == 0
        assert not full.timeline_truncated

    def test_ring_keeps_most_recent_epochs(self):
        full = run_recorded(_staggered_coflows(), 3)
        limited = self.run_limited(2)
        assert len(limited.epochs) == 2
        assert limited.epochs == full.epochs[-2:]
        assert limited.epochs_dropped == len(full.epochs) - 2
        assert limited.timeline_truncated

    def test_generous_limit_drops_nothing(self):
        full = run_recorded(_staggered_coflows(), 3)
        limited = self.run_limited(10_000)
        assert limited.epochs == full.epochs
        assert limited.epochs_dropped == 0
        assert not limited.timeline_truncated

    def test_ring_buffer_result_is_a_plain_list(self):
        # Consumers slice the timeline (gantt windows, ``epochs[-5:]``,
        # ``epochs[1:]`` pairwise scans) and serialize it; a deque would
        # raise on slicing, so the result must materialize a list.
        limited = self.run_limited(2)
        assert isinstance(limited.epochs, list)
        assert limited.epochs[1:]
        assert limited.epochs[-2:] == limited.epochs

    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError, match="timeline limit"):
            self.run_limited(0)
