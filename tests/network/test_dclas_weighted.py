"""Tests for Aalo's weighted queue sharing (starvation freedom)."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers.dclas import DCLASScheduler
from repro.network.simulator import CoflowSimulator


def run(coflows, sched):
    sim = CoflowSimulator(Fabric(n_ports=3, rate=1.0), sched)
    return sim.run(coflows)


class TestWeightedQueues:
    def test_invalid_decay_rejected(self):
        with pytest.raises(ValueError, match="decay"):
            DCLASScheduler(queue_weight_decay=1.0)
        with pytest.raises(ValueError, match="decay"):
            DCLASScheduler(queue_weight_decay=-0.1)

    def test_zero_decay_is_strict_priority(self):
        # With decay 0 the heavy (demoted) coflow starves until the light
        # one finishes on the shared port.
        sched = DCLASScheduler(
            first_threshold=5.0, multiplier=2, num_queues=4
        )
        big = Coflow([Flow(0, 1, 50.0)], coflow_id=0)
        small = Coflow([Flow(0, 2, 2.0)], arrival_time=6.0, coflow_id=1)
        res = run([big, small], sched)
        # Big already crossed the 5-byte threshold at t=5, so the small
        # (queue 0) preempts it fully on the shared egress port.
        assert res.ccts[1] == pytest.approx(2.0)

    def test_weighted_keeps_heavy_coflow_progressing(self):
        # At the allocation level: with decay > 0 the demoted coflow keeps
        # a share of the contended port instead of starving.
        from repro.network.events import CoflowProgress, SchedulingContext

        ctx = SchedulingContext(
            time=0.0,
            fabric=Fabric(n_ports=3, rate=1.0),
            srcs=np.array([0, 0]),
            dsts=np.array([1, 2]),
            remaining=np.array([40.0, 4.0]),
            coflow_ids=np.array([0, 1]),
            progress={
                0: CoflowProgress(0, 0.0, 50.0, 1, sent_bytes=10.0),  # demoted
                1: CoflowProgress(1, 1.0, 4.0, 1, sent_bytes=0.0),    # fresh
            },
        )
        strict = DCLASScheduler(
            first_threshold=5.0, multiplier=2, num_queues=4
        ).allocate(ctx)
        assert strict[0] == pytest.approx(0.0)  # starved
        assert strict[1] == pytest.approx(1.0)

        weighted = DCLASScheduler(
            first_threshold=5.0, multiplier=2, num_queues=4,
            queue_weight_decay=0.5,
        ).allocate(ctx)
        assert weighted[0] > 0.1  # keeps a slice
        assert weighted[1] > weighted[0]  # higher queue still favoured
        assert weighted[0] + weighted[1] == pytest.approx(1.0)  # conserving

    def test_weighted_end_to_end_small_pays_the_slice(self):
        weighted = DCLASScheduler(
            first_threshold=5.0, multiplier=2, num_queues=4,
            queue_weight_decay=0.5,
        )
        big = Coflow([Flow(0, 1, 50.0)], coflow_id=0)
        small = Coflow([Flow(0, 2, 4.0)], arrival_time=6.0, coflow_id=1)
        res = run([big, small], weighted)
        # Small no longer gets the full port: CCT above its isolated 4s.
        assert res.ccts[1] > 4.0
        # The shared port never idles, so big still completes at 54s.
        assert res.ccts[0] == pytest.approx(54.0)

    def test_work_conserving_with_weights(self):
        sched = DCLASScheduler(
            first_threshold=5.0, multiplier=2, num_queues=4,
            queue_weight_decay=0.3,
        )
        # One coflow alone must still get full line rate.
        cf = Coflow([Flow(0, 1, 8.0)])
        res = run([cf], sched)
        assert res.ccts[0] == pytest.approx(8.0)

    def test_all_bytes_delivered(self):
        sched = DCLASScheduler(
            first_threshold=3.0, multiplier=2, num_queues=3,
            queue_weight_decay=0.4,
        )
        rng = np.random.default_rng(2)
        coflows = [
            Coflow(
                [Flow(0, 1 + (i % 2), float(rng.integers(1, 20)))],
                arrival_time=float(i),
                coflow_id=i,
            )
            for i in range(6)
        ]
        res = run(coflows, sched)
        assert len(res.ccts) == 6
        assert res.total_bytes == sum(c.total_volume for c in coflows)
