"""Regression tests for the vectorized epoch loop and its bugfixes.

Covers the epoch-loop defects fixed alongside the hot-path rewrite:

- the noise-factor memo is evicted when coflows complete or abort
  (previously it grew without bound over the run);
- arrival admission uses a ULP-scaled slack, so coflows arriving at
  large simulation clocks (>= 1e9 s) are admitted on time (the old
  absolute ``1e-15`` epsilon falls below one float spacing there);
- a coflow whose flows all carry volume below the completion epsilon
  finishes instantly on admission (CCT exactly 0), like ``width == 0``;

plus exact-equality checks of the combined-port / scalar scheduler
kernels against the reference implementations they replace.
"""

import numpy as np
import pytest

from repro.core.noise import NoisyEstimates
from repro.network import CoflowSimulator, Fabric
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import (
    madd_rates_fast,
    madd_rates_reference,
    maxmin_fill_fast,
    maxmin_fill_reference,
)


def _mix(n=12, n_ports=6, base=0.0, step=0.375):
    # ``step`` is dyadic so ``base + i * step`` is exact even at
    # ``base = 1e9`` -- the shifted workload is the same workload.
    """Small deterministic workload with staggered arrivals."""
    rng = np.random.default_rng(5)
    out = []
    for i in range(n):
        width = int(rng.integers(1, 5))
        flows = []
        for _ in range(width):
            s = int(rng.integers(0, n_ports))
            d = int(rng.integers(0, n_ports - 1))
            if d >= s:
                d += 1
            flows.append(Flow(s, d, float(rng.uniform(0.5, 4.0))))
        out.append(
            Coflow(flows=flows, arrival_time=base + i * step, coflow_id=i)
        )
    return out


class TestNoiseMemoEviction:
    def test_memo_empty_after_clean_run(self):
        sim = CoflowSimulator(
            Fabric(n_ports=6, rate=1.0),
            make_scheduler("sebf"),
            estimate_noise=NoisyEstimates(sigma=0.4, seed=3),
        )
        res = sim.run(_mix())
        assert len(res.ccts) == 12
        # Every coflow completed, so every memo entry must be gone.
        assert sim._noise_factors == {}

    def test_memo_evicted_on_abort(self):
        dyn = FabricDynamics([RateEvent.failure(0.5, 0)])
        sim = CoflowSimulator(
            Fabric(n_ports=6, rate=1.0),
            make_scheduler("sebf"),
            dynamics=dyn,
            recovery="abort",
            estimate_noise=NoisyEstimates(sigma=0.4, seed=3),
        )
        res = sim.run(_mix())
        assert res.failed_coflows  # the scenario really aborts someone
        assert sim._noise_factors == {}

    def test_memo_evicted_reference_path_too(self):
        sim = CoflowSimulator(
            Fabric(n_ports=6, rate=1.0),
            make_scheduler("sebf"),
            estimate_noise=NoisyEstimates(sigma=0.4, seed=3),
            incremental=False,
        )
        sim.run(_mix())
        assert sim._noise_factors == {}


class TestArrivalSlackAtLargeClock:
    """Admission must not depend on the absolute simulation clock."""

    @pytest.mark.parametrize("scheduler", ["sebf", "fair", "dclas"])
    def test_run_is_clock_shift_invariant(self, scheduler):
        near = CoflowSimulator(
            Fabric(n_ports=6, rate=1.0), make_scheduler(scheduler)
        ).run(_mix(base=0.0))
        far = CoflowSimulator(
            Fabric(n_ports=6, rate=1.0), make_scheduler(scheduler)
        ).run(_mix(base=1e9))
        # The shifted run must look time-shifted, not structurally
        # different: same CCTs (up to clock-granularity rounding) and
        # at most one epoch of boundary-merge difference.
        assert abs(far.n_epochs - near.n_epochs) <= 1
        for cid, cct in near.ccts.items():
            assert far.ccts[cid] == pytest.approx(cct, rel=1e-6, abs=1e-5)

    @pytest.mark.parametrize("base", [0.0, 1e6, 1e9])
    def test_boundary_arrivals_spawn_no_dust_epochs(self, base):
        # Each coflow arrives exactly when its predecessor finishes; the
        # volume 1/3 makes every boundary a rounding victim.  With the
        # old absolute 1e-15 slack, the epoch clock lands a few ULP
        # short of the arrival once ULP(t) > 1e-15 (t > ~4.5) and each
        # missed boundary costs an extra sub-ULP epoch (53 epochs for 50
        # coflows at base 0).  The relative slack admits each arrival in
        # its boundary epoch.
        n, v = 50, 1.0 / 3.0
        cfs = [
            Coflow([Flow(0, 1, v)], arrival_time=base + i * v, coflow_id=i)
            for i in range(n)
        ]
        res = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("sebf")
        ).run(cfs)
        assert len(res.ccts) == n
        assert res.n_epochs <= n + 2

    def test_boundary_arrival_admitted_on_time(self):
        # Second coflow arrives exactly when the first finishes; at a
        # large clock the epoch boundary lands within a few ULP of the
        # arrival and must still admit it immediately.
        base = 1e9
        cfs = [
            Coflow([Flow(0, 1, 2.0)], arrival_time=base, coflow_id=0),
            Coflow([Flow(0, 1, 1.0)], arrival_time=base + 2.0, coflow_id=1),
        ]
        res = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("sebf")
        ).run(cfs)
        assert res.ccts[1] == pytest.approx(1.0, rel=1e-6)


class TestSubEpsilonCoflow:
    def test_all_dust_flows_complete_instantly(self):
        cfs = [
            Coflow(
                [Flow(0, 1, 1e-9), Flow(2, 3, 5e-7)],
                arrival_time=1.0,
                coflow_id=0,
            ),
            Coflow([Flow(0, 1, 4.0)], arrival_time=0.0, coflow_id=1),
        ]
        res = CoflowSimulator(
            Fabric(n_ports=4, rate=1.0), make_scheduler("sebf")
        ).run(cfs)
        # Pinned: the dust coflow's CCT is exactly zero -- it must not
        # linger an epoch at zero rate waiting for the drop pass.
        assert res.ccts[0] == 0.0
        assert res.completion_times[0] == 1.0
        assert res.ccts[1] == pytest.approx(4.0)

    def test_dust_coflow_alone(self):
        cfs = [
            Coflow([Flow(0, 1, 1e-8)], arrival_time=0.0, coflow_id=7),
        ]
        res = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("fair")
        ).run(cfs)
        assert res.ccts[7] == 0.0
        # The admission pass completes it before any rate allocation, so
        # at most the single (empty) bookkeeping epoch runs.
        assert res.n_epochs <= 1

    def test_width_zero_still_instant(self):
        cfs = [Coflow([], arrival_time=2.0, coflow_id=3)]
        res = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("sebf")
        ).run(cfs)
        assert res.ccts[3] == 0.0


def _random_case(rng, n_flows, n_ports):
    srcs = rng.integers(0, n_ports, size=n_flows)
    dsts = rng.integers(0, n_ports, size=n_flows)
    remaining = rng.uniform(0.1, 10.0, size=n_flows)
    res_out = rng.uniform(0.2, 2.0, size=n_ports)
    res_in = rng.uniform(0.2, 2.0, size=n_ports)
    return srcs, dsts, remaining, res_out, res_in


class TestKernelEquivalence:
    """Fast kernels must reproduce the reference floats exactly."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("weighted", [False, True])
    def test_maxmin_full(self, seed, weighted):
        rng = np.random.default_rng(seed)
        srcs, dsts, _, res_out, res_in = _random_case(rng, 40, 7)
        weights = rng.uniform(0.5, 3.0, size=40) if weighted else None
        ref = maxmin_fill_reference(
            srcs, dsts, res_out.copy(), res_in.copy(), weights=weights
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        fast = maxmin_fill_fast(srcs, dsts + 7, res, weights=weights)
        assert (ref == fast).all()

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("size", [1, 3, 9, 33])
    def test_maxmin_subset_scalar_and_array(self, seed, size):
        """Covers both the scalar (<= threshold) and array subset paths."""
        rng = np.random.default_rng(100 + seed)
        srcs, dsts, _, res_out, res_in = _random_case(rng, 40, 7)
        subset = np.sort(
            rng.choice(40, size=min(size, 40), replace=False)
        )
        ref = maxmin_fill_reference(
            srcs, dsts, res_out.copy(), res_in.copy(), subset=subset
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        fast = maxmin_fill_fast(
            srcs, dsts + 7, res, subset=subset, zero_rates=True
        )
        assert (ref == fast).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_maxmin_nonzero_rates_backfill(self, seed):
        rng = np.random.default_rng(200 + seed)
        srcs, dsts, _, res_out, res_in = _random_case(rng, 30, 6)
        rates0 = rng.uniform(0.0, 0.3, size=30)
        ref = maxmin_fill_reference(
            srcs, dsts, res_out.copy(), res_in.copy(), rates=rates0.copy()
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        fast = maxmin_fill_fast(srcs, dsts + 6, res, rates=rates0.copy())
        assert (ref == fast).all()

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("size", [1, 2, 4, 6, 20])
    def test_madd_scalar_and_array(self, seed, size):
        """Covers the scalar (<= 4) and array MADD paths, incl. blocked."""
        rng = np.random.default_rng(300 + seed)
        srcs, dsts, remaining, res_out, res_in = _random_case(rng, 40, 7)
        if seed % 2:
            res_out[int(srcs[0])] = 0.0  # force a blocked port sometimes
        subset = np.sort(rng.choice(40, size=size, replace=False))
        rates_ref = np.zeros(40)
        ok_ref = madd_rates_reference(
            srcs, dsts, remaining, res_out.copy(), res_in.copy(),
            subset, rates_ref,
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        rates_fast = np.zeros(40)
        ok_fast = madd_rates_fast(
            srcs, dsts + 7, remaining, res, subset, rates_fast
        )
        assert ok_ref == ok_fast
        assert (rates_ref == rates_fast).all()

    def test_madd_residual_consumption_matches(self):
        rng = np.random.default_rng(9)
        srcs, dsts, remaining, res_out, res_in = _random_case(rng, 20, 5)
        subset = np.arange(3)  # scalar path
        ro, ri = res_out.copy(), res_in.copy()
        madd_rates_reference(
            srcs, dsts, remaining, ro, ri, subset, np.zeros(20)
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        madd_rates_fast(srcs, dsts + 5, remaining, res, subset, np.zeros(20))
        assert (res[:5] == ro).all() and (res[5:] == ri).all()
