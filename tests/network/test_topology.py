"""Unit tests for the two-level (oversubscribed) topology extension."""

import pytest

from repro.network.flow import Coflow, Flow
from repro.network.topology import TwoLevelTopology


class TestGeometry:
    def test_rack_partitioning(self):
        topo = TwoLevelTopology(n_hosts=10, hosts_per_rack=4, host_rate=1.0)
        assert topo.n_racks == 3
        assert topo.rack_of(0) == 0
        assert topo.rack_of(7) == 1
        assert topo.rack_of(9) == 2
        assert topo.rack_size(2) == 2  # partial last rack

    def test_rack_of_range_check(self):
        topo = TwoLevelTopology(n_hosts=4, hosts_per_rack=2, host_rate=1.0)
        with pytest.raises(ValueError):
            topo.rack_of(4)

    def test_uplink_rate(self):
        topo = TwoLevelTopology(
            n_hosts=8, hosts_per_rack=4, host_rate=2.0, oversubscription=4.0
        )
        assert topo.uplink_rate(0) == pytest.approx(2.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TwoLevelTopology(n_hosts=0, hosts_per_rack=2)
        with pytest.raises(ValueError):
            TwoLevelTopology(n_hosts=4, hosts_per_rack=2, oversubscription=0.5)


class TestOptimalCCT:
    def test_full_bisection_matches_nonblocking(self):
        # Cross-rack single flow at oversubscription 1: NIC bound dominates
        # (uplink carries rack_size * host_rate >= one NIC).
        topo = TwoLevelTopology(n_hosts=4, hosts_per_rack=2, host_rate=1.0)
        cf = Coflow([Flow(0, 2, 6.0)])
        assert topo.optimal_cct(cf) == pytest.approx(cf.bottleneck(4, 1.0))
        assert topo.cct_inflation(cf) == pytest.approx(1.0)

    def test_intra_rack_traffic_skips_uplink(self):
        topo = TwoLevelTopology(
            n_hosts=4, hosts_per_rack=2, host_rate=1.0, oversubscription=100.0
        )
        cf = Coflow([Flow(0, 1, 5.0)])  # same rack
        assert topo.optimal_cct(cf) == pytest.approx(5.0)

    def test_oversubscription_inflates_cross_rack(self):
        topo = TwoLevelTopology(
            n_hosts=4, hosts_per_rack=2, host_rate=1.0, oversubscription=4.0
        )
        # Both hosts of rack 0 send cross-rack: uplink carries 2 units at
        # rate 0.5 -> bound 4x the NIC bound.
        cf = Coflow([Flow(0, 2, 1.0), Flow(1, 3, 1.0)])
        assert topo.optimal_cct(cf) == pytest.approx(4.0)
        assert topo.cct_inflation(cf) == pytest.approx(4.0)

    def test_downlink_bound(self):
        topo = TwoLevelTopology(
            n_hosts=4, hosts_per_rack=2, host_rate=1.0, oversubscription=4.0
        )
        cf = Coflow([Flow(0, 2, 1.0), Flow(1, 3, 1.0)])  # both into rack 1
        assert topo.optimal_cct(cf) >= 4.0 - 1e-9

    def test_out_of_range_host_rejected(self):
        topo = TwoLevelTopology(n_hosts=2, hosts_per_rack=2, host_rate=1.0)
        with pytest.raises(ValueError, match="beyond topology"):
            topo.optimal_cct(Coflow([Flow(0, 5, 1.0)]))

    def test_empty_coflow_inflation(self):
        topo = TwoLevelTopology(n_hosts=2, hosts_per_rack=2, host_rate=1.0)
        assert topo.cct_inflation(Coflow([])) == 1.0
