"""Tests for weighted max-min fairness and coflow weights."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import maxmin_fill
from repro.network.simulator import CoflowSimulator


class TestCoflowWeight:
    def test_weight_validated(self):
        with pytest.raises(ValueError, match="weight"):
            Coflow([Flow(0, 1, 1.0)], weight=0.0)

    def test_default_weight_is_one(self):
        assert Coflow([Flow(0, 1, 1.0)]).weight == 1.0


class TestWeightedMaxMin:
    def test_two_to_one_split(self):
        srcs, dsts = np.array([0, 0]), np.array([1, 2])
        rates = maxmin_fill(
            srcs, dsts, np.ones(3), np.ones(3),
            weights=np.array([2.0, 1.0]),
        )
        np.testing.assert_allclose(rates, [2 / 3, 1 / 3])

    def test_weights_only_matter_under_contention(self):
        srcs, dsts = np.array([0, 1]), np.array([1, 2])  # disjoint egress
        rates = maxmin_fill(
            srcs, dsts, np.ones(3), np.ones(3),
            weights=np.array([5.0, 1.0]),
        )
        # Flow 0 is capped by ingress port 1 it shares with... nothing:
        # both flows can run at line rate regardless of weights.
        np.testing.assert_allclose(rates, [1.0, 1.0])

    def test_validation(self):
        srcs, dsts = np.array([0]), np.array([1])
        with pytest.raises(ValueError, match="shape"):
            maxmin_fill(srcs, dsts, np.ones(2), np.ones(2),
                        weights=np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            maxmin_fill(srcs, dsts, np.ones(2), np.ones(2),
                        weights=np.zeros(1))

    def test_unweighted_unchanged(self):
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 4, 12)
        dsts = (srcs + 1 + rng.integers(0, 3, 12)) % 4
        plain = maxmin_fill(srcs, dsts, np.ones(4), np.ones(4))
        ones = maxmin_fill(
            srcs, dsts, np.ones(4), np.ones(4), weights=np.ones(12)
        )
        np.testing.assert_allclose(plain, ones)


class TestWeightedFairScheduler:
    def test_priority_coflow_finishes_first(self):
        fab = Fabric(n_ports=3, rate=1.0)
        vip = Coflow([Flow(0, 1, 6.0)], coflow_id=0, weight=2.0)
        best_effort = Coflow([Flow(0, 2, 6.0)], coflow_id=1, weight=1.0)
        res = CoflowSimulator(fab, make_scheduler("fair")).run(
            [vip, best_effort]
        )
        assert res.ccts[0] < res.ccts[1]
        # VIP at rate 2/3 finishes its 6 bytes at t=9; the best-effort
        # coflow has 3 bytes left (rate 1/3 so far) and takes the full
        # port afterwards: done at t=12.
        assert res.ccts[0] == pytest.approx(9.0)
        assert res.ccts[1] == pytest.approx(12.0)

    def test_weights_can_be_disabled(self):
        fab = Fabric(n_ports=3, rate=1.0)
        vip = Coflow([Flow(0, 1, 6.0)], coflow_id=0, weight=2.0)
        other = Coflow([Flow(0, 2, 6.0)], coflow_id=1)
        sched = make_scheduler("fair", use_weights=False)
        res = CoflowSimulator(fab, sched).run([vip, other])
        assert res.ccts[0] == pytest.approx(res.ccts[1])

    def test_equal_weights_match_plain_fair(self):
        fab = Fabric(n_ports=3, rate=1.0)
        coflows = [
            Coflow([Flow(0, 1, 4.0)], coflow_id=0),
            Coflow([Flow(0, 2, 4.0)], coflow_id=1),
        ]
        a = CoflowSimulator(fab, make_scheduler("fair")).run(coflows)
        b = CoflowSimulator(
            fab, make_scheduler("fair", use_weights=False)
        ).run(coflows)
        assert a.ccts == b.ccts
