"""Tests for Orchestra's Weighted Shuffle Scheduling."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def simulate(coflows, *, n_ports=4, rate=1.0, scheduler="wss"):
    sim = CoflowSimulator(Fabric(n_ports=n_ports, rate=rate),
                          make_scheduler(scheduler))
    return sim.run(coflows)


class TestWSS:
    def test_single_coflow_optimal(self):
        # Weighted allocation within one coflow is exactly MADD, so the
        # single-coflow CCT matches the closed-form bottleneck.
        cf = Coflow([Flow(0, 1, 6.0), Flow(2, 1, 2.0), Flow(0, 3, 4.0)])
        res = simulate([cf])
        assert res.max_cct == pytest.approx(cf.bottleneck(4, 1.0))

    def test_weighted_beats_unweighted_intuition(self):
        # The classic Orchestra example: one reducer pulls unequal flows.
        # Size-proportional rates finish the shuffle at the ingress bound;
        # any other completion is later.
        cf = Coflow([Flow(0, 1, 9.0), Flow(2, 1, 1.0)])
        res = simulate([cf])
        assert res.max_cct == pytest.approx(10.0)  # ingress port 1 bound

    def test_fifo_between_coflows(self):
        first = Coflow([Flow(0, 1, 4.0)], arrival_time=0.0)
        second = Coflow([Flow(0, 2, 4.0)], arrival_time=0.1)
        res = simulate([first, second])
        # Same egress port: first coflow holds it until completion.
        assert res.completion_times[0] == pytest.approx(4.0)
        assert res.completion_times[1] == pytest.approx(8.0)

    def test_work_conserving(self):
        # A flow on disjoint ports must run even while another coflow
        # holds priority elsewhere.
        a = Coflow([Flow(0, 1, 10.0)])
        b = Coflow([Flow(2, 3, 1.0)], arrival_time=0.0)
        res = simulate([a, b])
        assert res.ccts[1] == pytest.approx(1.0)

    def test_rates_proportional_to_sizes(self):
        from repro.network.events import CoflowProgress, SchedulingContext
        from repro.network.schedulers.wss import WSSScheduler

        fabric = Fabric(n_ports=3, rate=1.0)
        ctx = SchedulingContext(
            time=0.0,
            fabric=fabric,
            srcs=np.array([0, 2]),
            dsts=np.array([1, 1]),
            remaining=np.array([9.0, 1.0]),
            coflow_ids=np.array([0, 0]),
            progress={0: CoflowProgress(0, 0.0, 10.0, 2)},
        )
        rates = WSSScheduler().allocate(ctx)
        assert rates[0] / rates[1] == pytest.approx(9.0)
