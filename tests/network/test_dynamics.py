"""Tests for fabric dynamics (mid-simulation rate changes)."""

import numpy as np
import pytest

from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


class TestRateEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateEvent(time=-1, port=0, egress=1.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=-1, egress=1.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=0, egress=0.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=0)  # no direction changed


class TestFabricDynamics:
    def test_events_sorted(self):
        dyn = FabricDynamics(
            [RateEvent(5.0, 0, egress=1.0), RateEvent(1.0, 0, egress=2.0)]
        )
        assert [e.time for e in dyn.events] == [1.0, 5.0]

    def test_apply_due_consumes(self):
        fab = Fabric(n_ports=2, rate=4.0)
        dyn = FabricDynamics([RateEvent(1.0, 0, egress=2.0)])
        assert not dyn.apply_due(fab, 0.5)
        assert dyn.apply_due(fab, 1.0)
        assert fab.egress_rates[0] == 2.0
        assert fab.ingress_rates[0] == 4.0  # unchanged direction
        assert len(dyn) == 0

    def test_next_event_time(self):
        dyn = FabricDynamics([RateEvent(2.0, 0, egress=1.0)])
        assert dyn.next_event_time(0.0) == 2.0
        assert dyn.next_event_time(2.0) is None

    def test_validate_against(self):
        dyn = FabricDynamics([RateEvent(0.0, 5, egress=1.0)])
        with pytest.raises(ValueError, match="port 5"):
            dyn.validate_against(Fabric(n_ports=2))

    def test_degrade_helper(self):
        fab = Fabric(n_ports=3, rate=8.0)
        dyn = FabricDynamics.degrade(
            time=1.0, ports=[0, 2], factor=0.25, fabric=fab, recover_at=3.0
        )
        assert len(dyn) == 4
        with pytest.raises(ValueError):
            FabricDynamics.degrade(time=0, ports=[0], factor=0.0, fabric=fab)


class TestSimulatorIntegration:
    def run(self, coflows, dynamics, rate=1.0, n_ports=3, scheduler="sebf"):
        fab = Fabric(n_ports=n_ports, rate=rate)
        sim = CoflowSimulator(
            fab, make_scheduler(scheduler), dynamics=dynamics
        )
        return sim.run(coflows), fab

    def test_degradation_slows_completion(self):
        # 10 bytes at rate 1; at t=5 the egress drops to 0.25:
        # 5 bytes drained, remaining 5 take 20s -> finishes at 25.
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics([RateEvent(5.0, 0, egress=0.25)])
        res, fab = self.run([cf], dyn)
        assert res.ccts[0] == pytest.approx(25.0)
        # The caller's fabric is untouched.
        assert fab.egress_rates[0] == 1.0

    def test_recovery_speeds_back_up(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics(
            [
                RateEvent(2.0, 0, egress=0.5),
                RateEvent(4.0, 0, egress=1.0),
            ]
        )
        res, _ = self.run([cf], dyn)
        # 2s @1 + 2s @0.5 + 7s @1 = 10 bytes -> done at t=11.
        assert res.ccts[0] == pytest.approx(11.0)

    def test_ingress_event(self):
        cf = Coflow([Flow(0, 1, 4.0)])
        dyn = FabricDynamics([RateEvent(0.0, 1, ingress=0.5)])
        res, _ = self.run([cf], dyn)
        assert res.ccts[0] == pytest.approx(8.0)

    def test_unaffected_flows_unchanged(self):
        a = Coflow([Flow(0, 1, 4.0)], coflow_id=0)
        b = Coflow([Flow(2, 1, 4.0)], coflow_id=1)
        dyn = FabricDynamics([RateEvent(1.0, 2, egress=0.5)])
        res, _ = self.run([a, b], dyn)
        # Port 1 ingress is shared; both still finish (b slower).
        assert res.ccts[0] <= res.ccts[1]

    def test_repeatable_runs(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics([RateEvent(5.0, 0, egress=0.25)])
        fab = Fabric(n_ports=2, rate=1.0)
        sim = CoflowSimulator(fab, make_scheduler("sebf"), dynamics=dyn)
        r1 = sim.run([cf])
        r2 = sim.run([cf])
        assert r1.ccts[0] == pytest.approx(r2.ccts[0])

    def test_invalid_port_rejected_at_construction(self):
        dyn = FabricDynamics([RateEvent(0.0, 9, egress=1.0)])
        with pytest.raises(ValueError, match="port 9"):
            CoflowSimulator(
                Fabric(n_ports=2), make_scheduler("sebf"), dynamics=dyn
            )
