"""Tests for fabric dynamics (mid-simulation rate changes and failures)."""

import numpy as np
import pytest

from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


class TestRateEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            RateEvent(time=-1, port=0, egress=1.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=-1, egress=1.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=0, egress=-1.0)
        with pytest.raises(ValueError):
            RateEvent(time=0, port=0)  # no direction changed

    def test_zero_rate_is_a_failure_event(self):
        e = RateEvent(time=0, port=0, egress=0.0)
        assert e.is_failure
        assert not RateEvent(time=0, port=0, egress=1.0).is_failure

    def test_failure_and_recovery_helpers(self):
        f = RateEvent.failure(2.0, 1)
        assert f.egress == 0.0 and f.ingress == 0.0 and f.is_failure
        r = RateEvent.recovery(4.0, 1, egress=3.0, ingress=5.0)
        assert (r.egress, r.ingress) == (3.0, 5.0) and not r.is_failure
        with pytest.raises(ValueError):
            RateEvent.recovery(4.0, 1, egress=0.0, ingress=1.0)


class TestFabricDynamics:
    def test_events_sorted(self):
        dyn = FabricDynamics(
            [RateEvent(5.0, 0, egress=1.0), RateEvent(1.0, 0, egress=2.0)]
        )
        assert [e.time for e in dyn.events] == [1.0, 5.0]

    def test_apply_due_is_not_destructive(self):
        # Regression: apply_due used to consume the event list, silently
        # making a dynamics object single-use.
        fab = Fabric(n_ports=2, rate=4.0)
        dyn = FabricDynamics([RateEvent(1.0, 0, egress=2.0)])
        assert not dyn.apply_due(fab, 0.5)
        assert dyn.apply_due(fab, 1.0)
        assert fab.egress_rates[0] == 2.0
        assert fab.ingress_rates[0] == 4.0  # unchanged direction
        assert len(dyn) == 1  # the schedule survives
        assert dyn.pending == 0
        assert not dyn.apply_due(fab, 2.0)  # applied exactly once

    def test_rewind_allows_replay(self):
        dyn = FabricDynamics([RateEvent(1.0, 0, egress=2.0)])
        fab1 = Fabric(n_ports=2, rate=4.0)
        fab2 = Fabric(n_ports=2, rate=4.0)
        assert dyn.apply_due(fab1, 1.0)
        dyn.rewind()
        assert dyn.pending == 1
        assert dyn.apply_due(fab2, 1.0)
        assert fab2.egress_rates[0] == 2.0

    def test_same_schedule_drives_multiple_simulations(self):
        # Regression for the destructive apply_due: one FabricDynamics
        # object passed to a simulator must work for every run.
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics([RateEvent(5.0, 0, egress=0.25)])
        fab = Fabric(n_ports=2, rate=1.0)
        sim_a = CoflowSimulator(fab, make_scheduler("sebf"), dynamics=dyn)
        sim_b = CoflowSimulator(fab, make_scheduler("sebf"), dynamics=dyn)
        a1 = sim_a.run([cf])
        b1 = sim_b.run([cf])
        a2 = sim_a.run([cf])
        assert a1.ccts[0] == pytest.approx(25.0)
        assert b1.ccts[0] == pytest.approx(a1.ccts[0])
        assert a2.ccts[0] == pytest.approx(a1.ccts[0])
        assert len(dyn) == 1  # caller's schedule untouched

    def test_event_at_time_zero(self):
        fab = Fabric(n_ports=2, rate=4.0)
        dyn = FabricDynamics([RateEvent(0.0, 1, ingress=1.0)])
        assert dyn.apply_due(fab, 0.0)
        assert fab.ingress_rates[1] == 1.0

    def test_simultaneous_events_on_one_port_apply_in_order(self):
        # Stable sort: same-time events keep list order; the last wins.
        fab = Fabric(n_ports=2, rate=4.0)
        dyn = FabricDynamics(
            [RateEvent(1.0, 0, egress=2.0), RateEvent(1.0, 0, egress=3.0)]
        )
        assert dyn.apply_due(fab, 1.0)
        assert fab.egress_rates[0] == 3.0
        assert dyn.pending == 0

    def test_next_event_time(self):
        dyn = FabricDynamics([RateEvent(2.0, 0, egress=1.0)])
        assert dyn.next_event_time(0.0) == 2.0
        assert dyn.next_event_time(2.0) is None

    def test_validate_against(self):
        dyn = FabricDynamics([RateEvent(0.0, 5, egress=1.0)])
        with pytest.raises(ValueError, match="port 5"):
            dyn.validate_against(Fabric(n_ports=2))

    def test_validate_against_accepts_in_range(self):
        dyn = FabricDynamics([RateEvent(0.0, 1, egress=1.0)])
        dyn.validate_against(Fabric(n_ports=2))  # no raise

    def test_degrade_helper(self):
        fab = Fabric(n_ports=3, rate=8.0)
        dyn = FabricDynamics.degrade(
            time=1.0, ports=[0, 2], factor=0.25, fabric=fab, recover_at=3.0
        )
        assert len(dyn) == 4
        with pytest.raises(ValueError):
            FabricDynamics.degrade(time=0, ports=[0], factor=0.0, fabric=fab)

    def test_degrade_recover_restores_exact_original_rates(self):
        fab = Fabric(
            n_ports=3,
            rate=8.0,
            egress_rates=np.array([8.0, 6.0, 4.0]),
            ingress_rates=np.array([7.0, 5.0, 3.0]),
        )
        dyn = FabricDynamics.degrade(
            time=1.0, ports=[1, 2], factor=0.5, fabric=fab, recover_at=3.0
        )
        target = Fabric(
            n_ports=3,
            rate=8.0,
            egress_rates=fab.egress_rates,
            ingress_rates=fab.ingress_rates,
        )
        dyn.apply_due(target, 1.0)
        assert target.egress_rates[1] == 3.0 and target.ingress_rates[2] == 1.5
        dyn.apply_due(target, 3.0)
        np.testing.assert_allclose(target.egress_rates, fab.egress_rates)
        np.testing.assert_allclose(target.ingress_rates, fab.ingress_rates)

    def test_fail_helper(self):
        fab = Fabric(n_ports=3, rate=8.0)
        dyn = FabricDynamics.fail(
            time=1.0, ports=[0, 1], fabric=fab, recover_at=2.0
        )
        assert len(dyn) == 4 and dyn.has_failures
        dyn.apply_due(fab, 1.0)
        assert fab.egress_rates[0] == 0.0 and fab.ingress_rates[1] == 0.0
        dyn.apply_due(fab, 2.0)
        assert fab.egress_rates[0] == 8.0 and fab.ingress_rates[1] == 8.0
        with pytest.raises(ValueError, match="recover_at"):
            FabricDynamics.fail(time=2.0, ports=[0], fabric=fab, recover_at=2.0)

    def test_fail_direction_ingress_only(self):
        fab = Fabric(n_ports=3, rate=8.0)
        dyn = FabricDynamics.fail(
            time=1.0, ports=[1], fabric=fab, recover_at=2.0,
            direction="ingress",
        )
        assert dyn.has_failures
        dyn.apply_due(fab, 1.0)
        assert fab.ingress_rates[1] == 0.0
        assert fab.egress_rates[1] == 8.0  # sender side stays up
        dyn.apply_due(fab, 2.0)
        assert fab.ingress_rates[1] == 8.0
        with pytest.raises(ValueError, match="direction"):
            FabricDynamics.fail(
                time=1.0, ports=[1], fabric=fab, direction="sideways"
            )

    def test_has_failures_false_for_pure_degradation(self):
        fab = Fabric(n_ports=2, rate=4.0)
        dyn = FabricDynamics.degrade(time=1.0, ports=[0], factor=0.5, fabric=fab)
        assert not dyn.has_failures


class TestSimulatorIntegration:
    def run(self, coflows, dynamics, rate=1.0, n_ports=3, scheduler="sebf"):
        fab = Fabric(n_ports=n_ports, rate=rate)
        sim = CoflowSimulator(
            fab, make_scheduler(scheduler), dynamics=dynamics
        )
        return sim.run(coflows), fab

    def test_degradation_slows_completion(self):
        # 10 bytes at rate 1; at t=5 the egress drops to 0.25:
        # 5 bytes drained, remaining 5 take 20s -> finishes at 25.
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics([RateEvent(5.0, 0, egress=0.25)])
        res, fab = self.run([cf], dyn)
        assert res.ccts[0] == pytest.approx(25.0)
        # The caller's fabric is untouched.
        assert fab.egress_rates[0] == 1.0

    def test_recovery_speeds_back_up(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics(
            [
                RateEvent(2.0, 0, egress=0.5),
                RateEvent(4.0, 0, egress=1.0),
            ]
        )
        res, _ = self.run([cf], dyn)
        # 2s @1 + 2s @0.5 + 7s @1 = 10 bytes -> done at t=11.
        assert res.ccts[0] == pytest.approx(11.0)

    def test_ingress_event(self):
        cf = Coflow([Flow(0, 1, 4.0)])
        dyn = FabricDynamics([RateEvent(0.0, 1, ingress=0.5)])
        res, _ = self.run([cf], dyn)
        assert res.ccts[0] == pytest.approx(8.0)

    def test_unaffected_flows_unchanged(self):
        a = Coflow([Flow(0, 1, 4.0)], coflow_id=0)
        b = Coflow([Flow(2, 1, 4.0)], coflow_id=1)
        dyn = FabricDynamics([RateEvent(1.0, 2, egress=0.5)])
        res, _ = self.run([a, b], dyn)
        # Port 1 ingress is shared; both still finish (b slower).
        assert res.ccts[0] <= res.ccts[1]

    def test_repeatable_runs(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics([RateEvent(5.0, 0, egress=0.25)])
        fab = Fabric(n_ports=2, rate=1.0)
        sim = CoflowSimulator(fab, make_scheduler("sebf"), dynamics=dyn)
        r1 = sim.run([cf])
        r2 = sim.run([cf])
        assert r1.ccts[0] == pytest.approx(r2.ccts[0])

    def test_invalid_port_rejected_at_construction(self):
        dyn = FabricDynamics([RateEvent(0.0, 9, egress=1.0)])
        with pytest.raises(ValueError, match="port 9"):
            CoflowSimulator(
                Fabric(n_ports=2), make_scheduler("sebf"), dynamics=dyn
            )

    def test_failure_events_require_recovery_policy(self):
        dyn = FabricDynamics([RateEvent.failure(1.0, 0)])
        with pytest.raises(ValueError, match="recovery"):
            CoflowSimulator(
                Fabric(n_ports=2), make_scheduler("sebf"), dynamics=dyn
            )
