"""Unit tests for the non-blocking fabric model."""

import numpy as np
import pytest

from repro.network.fabric import DEFAULT_PORT_RATE, Fabric


class TestConstruction:
    def test_defaults(self):
        fab = Fabric(n_ports=4)
        assert fab.rate == DEFAULT_PORT_RATE
        assert fab.uniform
        np.testing.assert_allclose(fab.egress_rates, DEFAULT_PORT_RATE)

    def test_custom_rates(self):
        fab = Fabric(n_ports=2, rate=1.0, egress_rates=np.array([1.0, 2.0]))
        assert not fab.uniform
        assert fab.egress_rates[1] == 2.0
        assert fab.ingress_rates[0] == 1.0

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError, match="at least one port"):
            Fabric(n_ports=0)

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Fabric(n_ports=1, rate=0.0)

    def test_wrong_shape_rates_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            Fabric(n_ports=3, egress_rates=np.ones(2))

    def test_nonpositive_port_rate_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            Fabric(n_ports=2, ingress_rates=np.array([1.0, 0.0]))


class TestValidateRates:
    def setup_method(self):
        self.fab = Fabric(n_ports=3, rate=1.0)

    def test_feasible_allocation_passes(self):
        srcs = np.array([0, 1])
        dsts = np.array([1, 2])
        self.fab.validate_rates(srcs, dsts, np.array([0.5, 1.0]))

    def test_egress_violation(self):
        srcs = np.array([0, 0])
        dsts = np.array([1, 2])
        with pytest.raises(ValueError, match="egress.*port 0"):
            self.fab.validate_rates(srcs, dsts, np.array([0.7, 0.7]))

    def test_ingress_violation(self):
        srcs = np.array([0, 2])
        dsts = np.array([1, 1])
        with pytest.raises(ValueError, match="ingress.*port 1"):
            self.fab.validate_rates(srcs, dsts, np.array([0.7, 0.7]))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            self.fab.validate_rates(
                np.array([0]), np.array([1]), np.array([-0.1])
            )

    def test_tolerance_absorbs_rounding(self):
        srcs = np.array([0])
        dsts = np.array([1])
        self.fab.validate_rates(srcs, dsts, np.array([1.0 + 1e-9]))
