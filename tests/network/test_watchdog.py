"""Simulator watchdog tests: stall detection, budgets, crash reports.

The pathological loop used throughout: a scheduler that never assigns a
positive rate but keeps hinting a next event far below the float spacing
of the clock.  At a large simulation time ``t + hint == t``, so every
epoch "advances" by a step the clock cannot represent -- the classic
spin the watchdog exists for.  (The pre-existing starvation check cannot
catch it: ``dt`` is finite and positive.)
"""

import numpy as np
import pytest

from repro.core.resilience import BudgetExceeded, StallError
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import CoflowScheduler
from repro.network.simulator import DEFAULT_STALL_EPOCHS, CoflowSimulator
from repro.obs import Tracer


class SpinningScheduler(CoflowScheduler):
    """Zero rates + a sub-ULP hint: the epoch loop spins at large t."""

    name = "spinning"

    def allocate(self, ctx):
        return np.zeros_like(ctx.remaining)

    def next_event_hint(self, ctx, rates):
        return 1e-9  # > the 1e-12 floor, < one ULP at t = 1e9


def spin_coflow() -> Coflow:
    # Arrives at t = 1e9 so the clock's float spacing (~1.2e-7) swallows
    # the scheduler's 1e-9 steps: t += dt leaves t unchanged.
    return Coflow([Flow(0, 1, 5.0)], arrival_time=1e9)


class TestStallDetector:
    def test_spin_raises_stall_error(self):
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0),
            SpinningScheduler(),
            stall_epochs=50,
        )
        with pytest.raises(StallError, match="stalled") as info:
            sim.run([spin_coflow()])
        report = info.value.report
        assert report is not None
        assert report["error"]["type"] == "StallError"
        assert report["context"]["active_flows"] == 1
        assert report["context"]["active_coflows"][0]["coflow_id"] == 0
        assert report["context"]["active_coflows"][0]["remaining_bytes"] == 5.0
        assert "version" in report["header"]

    def test_stall_error_is_a_runtime_error(self):
        # Pre-taxonomy call sites catch RuntimeError; keep them working.
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), SpinningScheduler(), stall_epochs=50
        )
        with pytest.raises(RuntimeError):
            sim.run([spin_coflow()])

    def test_stall_detector_default_enabled(self):
        sim = CoflowSimulator(Fabric(n_ports=2, rate=1.0), SpinningScheduler())
        assert sim.stall_epochs == DEFAULT_STALL_EPOCHS
        with pytest.raises(StallError):
            sim.run([spin_coflow()])

    def test_disabled_detector_falls_through_to_epoch_budget(self):
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0),
            SpinningScheduler(),
            stall_epochs=0,
            max_epochs=500,
        )
        with pytest.raises(BudgetExceeded, match="max_epochs"):
            sim.run([spin_coflow()])

    def test_crash_report_includes_event_tail_from_tracer(self):
        tracer = Tracer()
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0),
            SpinningScheduler(),
            stall_epochs=50,
            instrumentation=tracer,
        )
        with pytest.raises(StallError) as info:
            sim.run([spin_coflow()])
        report = info.value.report
        assert report["events_total"] > 0
        assert report["last_events"][-1]["kind"] == "epoch"


class TestBudgets:
    def test_max_epochs_breach_is_structured(self):
        # A healthy workload, starved of epochs: the old bare
        # RuntimeError is now BudgetExceeded with a crash report.
        coflows = [
            Coflow([Flow(0, 1, 1.0)], arrival_time=float(i)) for i in range(5)
        ]
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("sebf"), max_epochs=2
        )
        with pytest.raises(BudgetExceeded, match="max_epochs") as info:
            sim.run(coflows)
        assert info.value.report["context"]["max_epochs"] == 2
        assert isinstance(info.value, RuntimeError)

    def test_wall_clock_budget(self):
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0),
            SpinningScheduler(),
            stall_epochs=0,  # isolate the wall-clock tripwire
            wall_clock_budget_s=0.2,
        )
        with pytest.raises(BudgetExceeded, match="wall-clock") as info:
            sim.run([spin_coflow()])
        assert info.value.report["context"]["wall_clock_budget_s"] == 0.2

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="wall_clock_budget_s"):
            CoflowSimulator(
                Fabric(n_ports=2, rate=1.0),
                make_scheduler("sebf"),
                wall_clock_budget_s=0.0,
            )
        with pytest.raises(ValueError, match="stall_epochs"):
            CoflowSimulator(
                Fabric(n_ports=2, rate=1.0),
                make_scheduler("sebf"),
                stall_epochs=-1,
            )


class TestNoFalsePositives:
    def test_healthy_run_unaffected_by_watchdogs(self):
        coflows = [
            Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0)]),
            Coflow([Flow(1, 0, 2.0)], arrival_time=1.0),
        ]
        plain = CoflowSimulator(
            Fabric(n_ports=3, rate=1.0), make_scheduler("sebf"), stall_epochs=0
        ).run(coflows)
        guarded = CoflowSimulator(
            Fabric(n_ports=3, rate=1.0),
            make_scheduler("sebf"),
            stall_epochs=3,  # aggressively tight: healthy runs never stall
            wall_clock_budget_s=300.0,
        ).run(coflows)
        assert guarded.ccts == plain.ccts
        assert guarded.makespan == plain.makespan
