"""Tests for the open-loop ArrivalSource hook and the timeline ring buffer."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import (
    ArrivalSource,
    CoflowSimulator,
    _TimelineCollector,
)


def make_coflows(n=6, n_ports=4, seed=0):
    rng = np.random.default_rng(seed)
    coflows = []
    t = 0.0
    for cid in range(n):
        t += float(rng.exponential(0.5))
        flows = []
        for _ in range(int(rng.integers(1, 4))):
            src = int(rng.integers(0, n_ports))
            dst = int(rng.integers(0, n_ports - 1))
            if dst >= src:
                dst += 1
            flows.append(
                Flow(src=src, dst=dst, volume=float(rng.uniform(1e6, 5e7)))
            )
        coflows.append(Coflow(flows=flows, arrival_time=t, coflow_id=cid))
    return coflows


class ListSource(ArrivalSource):
    """Replays a fixed coflow list through the source protocol."""

    def __init__(self, coflows):
        self.queue = sorted(coflows, key=lambda c: c.arrival_time)
        self.i = 0

    def next_time(self, now):
        if self.i >= len(self.queue):
            return None
        return self.queue[self.i].arrival_time

    def take(self, now, slack):
        out = []
        while (
            self.i < len(self.queue)
            and self.queue[self.i].arrival_time <= now + slack
        ):
            out.append(self.queue[self.i])
            self.i += 1
        return out


def sim(**kwargs):
    return CoflowSimulator(
        Fabric(n_ports=4, rate=128e6), make_scheduler("sebf"), **kwargs
    )


class TestArrivalSource:
    def test_source_matches_batch(self):
        """Feeding the same coflows via the source hook is bit-identical
        to handing them over up front."""
        coflows = make_coflows()
        batch = sim().run(coflows)
        streamed = sim().run([], source=ListSource(coflows))
        assert streamed.ccts == batch.ccts
        assert streamed.makespan == batch.makespan

    def test_empty_runs_are_empty_results(self):
        assert sim().run([]).ccts == {}
        result = sim().run([], source=ListSource([]))
        assert result.ccts == {}
        assert result.makespan == 0.0

    def test_base_source_is_a_noop(self):
        src = ArrivalSource()
        assert src.next_time(0.0) is None
        assert src.take(0.0, 0.0) == []

    def test_deferred_admission_charges_queueing_delay(self):
        """A source may release a coflow after its arrival_time (an
        admission-controller deferral); the CCT keeps charging the wait."""
        cf = make_coflows(n=1)[0]

        class DeferredSource(ListSource):
            RELEASE_AT = 5.0

            def next_time(self, now):
                if self.i >= len(self.queue):
                    return None
                return self.RELEASE_AT

            def take(self, now, slack):
                if now + slack < self.RELEASE_AT:
                    return []
                out, self.i = self.queue[self.i :], len(self.queue)
                return out

        prompt = sim().run([], source=ListSource([cf])).ccts[cf.coflow_id]
        deferred = sim().run([], source=DeferredSource([cf]))
        # Released >= 4s after arrival: the CCT grew by the queueing wait.
        delay = DeferredSource.RELEASE_AT - cf.arrival_time
        assert deferred.ccts[cf.coflow_id] == pytest.approx(
            prompt + delay, rel=1e-6
        )

    def test_source_with_initial_batch(self):
        """Initial coflows and streamed ones coexist."""
        coflows = make_coflows(n=6)
        both = sim().run(coflows[:3], source=ListSource(coflows[3:]))
        batch = sim().run(coflows)
        assert both.ccts == batch.ccts


class TestTimelineRingBuffer:
    def test_limit_keeps_the_tail(self):
        coflows = make_coflows()
        full = sim(record_timeline=True).run(coflows)
        tail = sim(record_timeline=True, timeline_limit=5).run(coflows)
        assert len(tail.epochs) == 5
        assert [e.start for e in tail.epochs] == [
            e.start for e in full.epochs[-5:]
        ]

    def test_limit_larger_than_run_keeps_everything(self):
        coflows = make_coflows()
        full = sim(record_timeline=True).run(coflows)
        capped = sim(record_timeline=True, timeline_limit=10**6).run(coflows)
        assert len(capped.epochs) == len(full.epochs)

    def test_collector_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            _TimelineCollector(0)
