"""Tests for coflow JSON serialization."""

import json

import numpy as np
import pytest

from repro.network.flow import Coflow, Flow
from repro.network.io import (
    coflow_from_dict,
    coflow_to_dict,
    load_coflows,
    save_coflows,
)


@pytest.fixture
def coflows():
    return [
        Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.5)], name="a", coflow_id=0),
        Coflow([Flow(1, 0, 2.0)], arrival_time=5.0, name="b", coflow_id=1),
    ]


class TestRoundTrip:
    def test_dict_round_trip(self, coflows):
        for cf in coflows:
            back = coflow_from_dict(coflow_to_dict(cf))
            assert back.name == cf.name
            assert back.arrival_time == cf.arrival_time
            assert back.coflow_id == cf.coflow_id
            assert [(f.src, f.dst, f.volume) for f in back] == [
                (f.src, f.dst, f.volume) for f in cf
            ]

    def test_file_round_trip(self, coflows, tmp_path):
        path = tmp_path / "coflows.json"
        save_coflows(coflows, path)
        back = load_coflows(path)
        assert len(back) == 2
        assert back[1].arrival_time == 5.0
        assert back[0].total_volume == pytest.approx(4.5)

    def test_file_is_valid_json(self, coflows, tmp_path):
        path = tmp_path / "coflows.json"
        save_coflows(coflows, path)
        data = json.loads(path.read_text())
        assert data["version"] == 1


class TestValidation:
    def test_bad_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            coflow_from_dict({"version": 99, "flows": []})

    def test_malformed_flow_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            coflow_from_dict({"flows": [{"src": 0}]})

    def test_non_coflow_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a coflow file"):
            load_coflows(path)

    def test_defaults_filled(self):
        cf = coflow_from_dict(
            {"flows": [{"src": 0, "dst": 1, "volume": 2.0}]}
        )
        assert cf.arrival_time == 0.0
        assert cf.coflow_id == -1


class TestCLIIntegration:
    def test_plan_and_simulate_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "plan.json"
        assert main(
            ["plan", "--nodes", "8", "--scale-factor", "0.05",
             "--out", str(out)]
        ) == 0
        assert out.exists()
        assert main(["simulate", str(out), "--scheduler", "sebf"]) == 0
        text = capsys.readouterr().out
        assert "average CCT" in text

    def test_simulate_empty_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.network.io import save_coflows

        out = tmp_path / "empty.json"
        save_coflows([], out)
        assert main(["simulate", str(out)]) == 1
