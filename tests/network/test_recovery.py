"""Tests for the failure-injection and flow-recovery subsystem."""

import numpy as np
import pytest

from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.recovery import (
    AbortPolicy,
    ReplanPolicy,
    RetryPolicy,
    make_recovery_policy,
)
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def simulate(coflows, dynamics, recovery, *, n_ports=4, rate=1.0,
             scheduler="sebf"):
    fab = Fabric(n_ports=n_ports, rate=rate)
    sim = CoflowSimulator(
        fab, make_scheduler(scheduler), dynamics=dynamics, recovery=recovery
    )
    return sim.run(coflows)


def shuffle_into(dst, volume=10.0, srcs=(0, 1, 2)):
    return Coflow([Flow(s, dst, volume) for s in srcs])


class TestPolicyFactory:
    def test_names(self):
        assert isinstance(make_recovery_policy("abort"), AbortPolicy)
        assert isinstance(make_recovery_policy("retry"), RetryPolicy)
        assert isinstance(make_recovery_policy("replan"), ReplanPolicy)
        with pytest.raises(ValueError, match="unknown recovery policy"):
            make_recovery_policy("hope")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(lost_progress_fraction=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-1.0)


class TestAbort:
    def test_coflow_fails_and_run_completes(self):
        cfs = [shuffle_into(3), Coflow([Flow(0, 1, 6.0)], coflow_id=7)]
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0)
        )
        res = simulate(cfs, dyn, "abort")
        assert res.failed_coflows == {0: 2.0}
        assert 0 not in res.ccts
        # The unaffected coflow still completes normally.
        assert res.ccts[7] == pytest.approx(6.0)
        kinds = [r.kind for r in res.failures]
        assert "port_failed" in kinds and "abort" in kinds

    def test_abort_counts_wasted_bytes(self):
        res = simulate(
            [shuffle_into(3)],
            FabricDynamics.fail(
                time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0)
            ),
            "abort",
        )
        # Port 3 ingested 2 seconds at rate 1 before dying.
        assert res.bytes_lost == pytest.approx(2.0)


class TestRetry:
    def test_restarts_after_recovery_full_loss(self):
        # Single flow 0->1 of 10 bytes; port 1 dies at t=2 (2 bytes in),
        # recovers at t=8.  Full progress loss: 10 bytes from scratch.
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics.fail(
            time=2.0, ports=[1], fabric=Fabric(n_ports=2, rate=1.0),
            recover_at=8.0,
        )
        res = simulate(
            [cf], dyn, RetryPolicy(lost_progress_fraction=1.0), n_ports=2
        )
        assert res.ccts[0] == pytest.approx(18.0)
        assert res.bytes_lost == pytest.approx(2.0)
        assert not res.failed_coflows

    def test_restarts_after_recovery_no_loss(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics.fail(
            time=2.0, ports=[1], fabric=Fabric(n_ports=2, rate=1.0),
            recover_at=8.0,
        )
        res = simulate(
            [cf], dyn, RetryPolicy(lost_progress_fraction=0.0), n_ports=2
        )
        # 2 delivered + 6 down + 8 remaining.
        assert res.ccts[0] == pytest.approx(16.0)
        assert res.bytes_lost == pytest.approx(0.0)

    def test_exponential_backoff_delays_restart(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        fab = Fabric(n_ports=2, rate=1.0)
        dyn = FabricDynamics.fail(time=2.0, ports=[1], fabric=fab,
                                  recover_at=4.0)
        res = simulate(
            [cf],
            dyn,
            RetryPolicy(lost_progress_fraction=0.0, backoff_base=3.0),
            n_ports=2,
        )
        # First stranding: backoff 3 * 2**0 = 3s from t=2 -> resume at
        # max(recovery=4, 5) = 5; 8 bytes remain -> done at 13.
        assert res.ccts[0] == pytest.approx(13.0)
        resumes = [r for r in res.failures if r.kind == "resume"]
        assert resumes and resumes[0].time == pytest.approx(5.0)

    def test_unrecoverable_without_repair(self):
        cf = shuffle_into(3)
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0)
        )
        res = simulate([cf], dyn, "retry")
        assert res.failed_coflows == {0: 2.0}
        assert any(r.kind == "unrecoverable" for r in res.failures)

    def test_repeated_failures_increase_attempts(self):
        # Port 1 dies twice; flow must restart twice, backing off longer.
        cf = Coflow([Flow(0, 1, 10.0)])
        fab = Fabric(n_ports=2, rate=1.0)
        dyn = FabricDynamics(
            [
                RateEvent.failure(2.0, 1),
                RateEvent.recovery(3.0, 1, egress=1.0, ingress=1.0),
                RateEvent.failure(4.0, 1),
                RateEvent.recovery(5.0, 1, egress=1.0, ingress=1.0),
            ]
        )
        res = simulate(
            [cf],
            dyn,
            RetryPolicy(lost_progress_fraction=0.0, backoff_base=1.0),
            n_ports=2,
        )
        resumes = [r for r in res.failures if r.kind == "resume"]
        assert len(resumes) == 2
        # Second stranding backs off 1 * 2**1 = 2s from t=4 -> resume 6.
        assert resumes[1].time == pytest.approx(6.0)
        assert not res.failed_coflows


class TestReplan:
    def test_chunk_moves_as_one_unit(self):
        # Three sources feed the partition on port 3; after replan the
        # whole chunk must land on ONE surviving node.
        cf = shuffle_into(3)
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0),
            recover_at=50.0,
        )
        res = simulate([cf], dyn, "replan")
        # New destination ingests 20 bytes (one piece stays local).
        assert res.ccts[0] == pytest.approx(22.0)
        summary = res.failure_summary()
        assert summary["reroutes"] == 2
        assert not res.failed_coflows

    def test_replan_without_recovery_event_still_completes(self):
        cf = shuffle_into(3)
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0)
        )
        res = simulate([cf], dyn, "replan")
        assert 0 in res.ccts and not res.failed_coflows

    def test_local_delivery_completes_coflow(self):
        # Only flow goes 0->1; when port 1 dies the only survivor is the
        # source itself, so the chunk stays local and the coflow is done.
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics.fail(
            time=2.0, ports=[1], fabric=Fabric(n_ports=2, rate=1.0)
        )
        res = simulate([cf], dyn, "replan", n_ports=2)
        assert res.ccts[0] == pytest.approx(2.0)
        assert any(r.kind == "local_delivery" for r in res.failures)

    def test_source_failure_falls_back_to_retry(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        dyn = FabricDynamics.fail(
            time=2.0, ports=[0], fabric=Fabric(n_ports=2, rate=1.0),
            recover_at=5.0,
        )
        res = simulate(
            [cf],
            dyn,
            ReplanPolicy(lost_progress_fraction=0.0),
            n_ports=2,
        )
        # Data lives on dead port 0: wait for it, resume with 8 left.
        assert res.ccts[0] == pytest.approx(13.0)
        assert any(r.kind == "suspend" for r in res.failures)

    def test_replan_beats_retry_with_full_progress_loss(self):
        # Acceptance criterion: on the reference scenario (a shuffle into
        # a port that dies mid-run and recovers late) replanning chunks
        # onto survivors yields strictly lower average CCT than waiting
        # and restarting from scratch.
        fab = Fabric(n_ports=6, rate=1.0)
        coflows = [
            Coflow([Flow(s, 5, 8.0) for s in range(4)], coflow_id=0),
            Coflow([Flow(0, 1, 4.0), Flow(2, 5, 6.0)], coflow_id=1,
                   arrival_time=1.0),
        ]

        def run(policy):
            dyn = FabricDynamics.fail(
                time=2.0, ports=[5], fabric=fab, recover_at=60.0
            )
            return simulate(coflows, dyn, policy, n_ports=6)

        res_retry = run(RetryPolicy(lost_progress_fraction=1.0))
        res_replan = run(ReplanPolicy(lost_progress_fraction=1.0))
        assert not res_retry.failed_coflows
        assert not res_replan.failed_coflows
        assert res_replan.average_cct < res_retry.average_cct

    def test_replan_spreads_chunks_across_survivors(self):
        # Two separate coflows lose their (distinct) partitions on port
        # 4; the planner should not pile both onto the same survivor.
        fab = Fabric(n_ports=5, rate=1.0)
        cfs = [
            Coflow([Flow(0, 4, 10.0), Flow(1, 4, 10.0)], coflow_id=0),
            Coflow([Flow(2, 4, 10.0), Flow(3, 4, 10.0)], coflow_id=1),
        ]
        dyn = FabricDynamics.fail(time=1.0, ports=[4], fabric=fab)
        res = simulate(cfs, dyn, "replan", n_ports=5)
        assert set(res.ccts) == {0, 1}
        # Makespan stays near one chunk's transfer time; piling both
        # chunks on one receiver would roughly double it.
        assert res.makespan < 16.0


class TestFailureLog:
    def test_structure(self):
        cf = shuffle_into(3)
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0),
            recover_at=9.0,
        )
        res = simulate([cf], dyn, RetryPolicy(lost_progress_fraction=1.0))
        kinds = [r.kind for r in res.failures]
        assert kinds.count("port_failed") == 1
        assert kinds.count("port_recovered") == 1
        fail = next(r for r in res.failures if r.kind == "port_failed")
        assert fail.time == pytest.approx(2.0) and fail.port == 3
        susp = next(r for r in res.failures if r.kind == "suspend")
        assert susp.coflow_id == 0 and susp.flows == 3
        assert susp.bytes_lost == pytest.approx(2.0)  # 2s of ingest wasted
        resume = next(r for r in res.failures if r.kind == "resume")
        assert resume.time == pytest.approx(9.0) and resume.flows == 3

    def test_clean_run_has_empty_log(self):
        res = simulate([shuffle_into(3)], None, None)
        assert res.failures == [] and res.failed_coflows == {}
        assert res.bytes_lost == 0.0 and res.n_port_failures == 0

    def test_summary_counters(self):
        cf = shuffle_into(3)
        dyn = FabricDynamics.fail(
            time=2.0, ports=[3], fabric=Fabric(n_ports=4, rate=1.0),
            recover_at=50.0,
        )
        s = simulate([cf], dyn, "replan").failure_summary()
        assert s["port_failures"] == 1
        assert s["reroutes"] + s["restarts"] >= 1
        assert s["aborted_coflows"] == 0
        assert s["bytes_lost"] == pytest.approx(2.0)


class TestAllPoliciesComplete:
    """Acceptance: a mid-run port failure deadlocks no policy."""

    @pytest.mark.parametrize("policy", ["abort", "retry", "replan"])
    @pytest.mark.parametrize("scheduler", ["fair", "sebf", "dclas"])
    def test_completes(self, policy, scheduler):
        fab = Fabric(n_ports=4, rate=1.0)
        cfs = [
            shuffle_into(3),
            Coflow([Flow(1, 2, 5.0)], coflow_id=9, arrival_time=0.5),
        ]
        dyn = FabricDynamics.fail(
            time=1.5, ports=[3], fabric=fab, recover_at=12.0
        )
        res = simulate(cfs, dyn, policy, scheduler=scheduler)
        # Every coflow either completed or was explicitly failed.
        assert set(res.ccts) | set(res.failed_coflows) == {0, 9}
        assert 9 in res.ccts  # untouched coflow always completes
