"""Unit tests for the scheduling context (events module)."""

import numpy as np
import pytest

from repro.network.events import CoflowProgress, SchedulingContext
from repro.network.fabric import Fabric


@pytest.fixture
def ctx():
    return SchedulingContext(
        time=2.0,
        fabric=Fabric(n_ports=4, rate=2.0),
        srcs=np.array([0, 1, 0]),
        dsts=np.array([1, 2, 3]),
        remaining=np.array([6.0, 4.0, 2.0]),
        coflow_ids=np.array([0, 0, 1]),
        progress={
            0: CoflowProgress(0, 0.0, 10.0, 2),
            1: CoflowProgress(1, 1.0, 2.0, 1, deadline=5.0),
        },
    )


class TestSchedulingContext:
    def test_n_flows(self, ctx):
        assert ctx.n_flows == 3

    def test_active_coflow_ids(self, ctx):
        assert ctx.active_coflow_ids() == [0, 1]

    def test_flows_of(self, ctx):
        np.testing.assert_array_equal(ctx.flows_of(0), [0, 1])
        np.testing.assert_array_equal(ctx.flows_of(1), [2])
        assert ctx.flows_of(9).size == 0

    def test_remaining_volume(self, ctx):
        assert ctx.remaining_volume(0) == 10.0
        assert ctx.remaining_volume(1) == 2.0

    def test_remaining_bottleneck_accounts_rates(self, ctx):
        # Coflow 0: egress port 0 sends 6, port 1 sends 4; ingress 1 gets
        # 6, ingress 2 gets 4.  At rate 2 the bottleneck is 6/2 = 3.
        assert ctx.remaining_bottleneck(0) == pytest.approx(3.0)

    def test_remaining_bottleneck_empty(self, ctx):
        assert ctx.remaining_bottleneck(42) == 0.0


class TestCoflowProgress:
    def test_absolute_deadline(self):
        p = CoflowProgress(0, arrival_time=3.0, total_volume=1.0, width=1,
                           deadline=4.0)
        assert p.absolute_deadline == 7.0

    def test_no_deadline(self):
        p = CoflowProgress(0, 0.0, 1.0, 1)
        assert p.absolute_deadline is None

    def test_finished_flag(self):
        p = CoflowProgress(0, 0.0, 1.0, 1)
        assert not p.finished
        p.completion_time = 5.0
        assert p.finished

    def test_default_weight(self):
        assert CoflowProgress(0, 0.0, 1.0, 1).weight == 1.0
