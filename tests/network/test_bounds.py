"""The interval-indexed LP lower bound (`repro.network.bounds`).

The bound's whole value is its *validity*: no feasible schedule may ever
beat it.  These tests pin that against every registered scheduler on
random instances, plus the proven approximation ceilings of the two
guaranteed schedulers and the basic shape/degenerate-case contracts.
"""

import numpy as np
import pytest

from repro.network.bounds import (
    WeightedCCTBound,
    interval_indexed_lp,
    weighted_cct_lower_bound,
)
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import SCHEDULER_NAMES, make_scheduler
from repro.network.simulator import CoflowSimulator

#: Proven worst-case ratios (with release times) the empirical gaps must
#: respect: Shafiee-Ghaderi 5x, Qiu/Stein/Zhong 67/3.
CEILINGS = {"wcct5": 5.0, "lpcct": 67.0 / 3.0}


def _random_instance(seed, *, n_ports=5, n_coflows=5):
    rng = np.random.default_rng(seed)
    coflows = []
    arrivals = np.cumsum(rng.exponential(1.0, size=n_coflows))
    for cid in range(n_coflows):
        flows = {}
        for _ in range(int(rng.integers(1, 4))):
            s, d = rng.choice(n_ports, size=2, replace=False)
            flows[(int(s), int(d))] = flows.get((int(s), int(d)), 0.0) + float(
                rng.uniform(0.5, 10.0)
            )
        coflows.append(
            Coflow(
                flows=[Flow(s, d, v) for (s, d), v in sorted(flows.items())],
                arrival_time=float(arrivals[cid]),
                coflow_id=cid,
                weight=float(rng.integers(1, 8)),
            )
        )
    return coflows, Fabric(n_ports=n_ports, rate=1.0)


def _achieved(coflows, result):
    return sum(c.weight * result.completion_times[c.coflow_id] for c in coflows)


class TestIntervalLP:
    def test_single_coflow_single_port_is_tight(self):
        # One coflow loading one port with L bytes at rate 1: the optimum
        # is exactly L, and the LP must find it (up to interval rounding
        # it can only be *below*).
        loads = np.array([[8.0]])
        sol = interval_indexed_lp(
            loads, np.array([1.0]), np.array([0.0]), np.array([1.0])
        )
        assert sol.objective == pytest.approx(8.0)
        assert sol.completion_times[0] == pytest.approx(8.0)

    def test_empty_instance(self):
        sol = interval_indexed_lp(
            np.zeros((0, 2)), np.zeros(0), np.zeros(0), np.ones(2)
        )
        assert sol.objective == 0.0
        assert sol.completion_times.shape == (0,)

    def test_bad_charge_rejected(self):
        with pytest.raises(ValueError, match="charge"):
            interval_indexed_lp(
                np.ones((1, 1)),
                np.ones(1),
                np.zeros(1),
                np.ones(1),
                charge="nonsense",
            )

    def test_order_charge_never_exceeds_bound_charge(self):
        # The ordering variant frees the first interval, so its optimum
        # is a (weakly) looser bound.
        rng = np.random.default_rng(3)
        loads = rng.uniform(0.0, 5.0, size=(4, 3))
        weights = rng.uniform(1.0, 4.0, size=4)
        releases = rng.uniform(0.0, 2.0, size=4)
        rates = np.ones(3)
        tight = interval_indexed_lp(loads, weights, releases, rates)
        loose = interval_indexed_lp(
            loads, weights, releases, rates, charge="order"
        )
        assert loose.objective <= tight.objective + 1e-9

    def test_weights_scale_the_objective(self):
        loads = np.array([[4.0], [4.0]])
        releases = np.zeros(2)
        rates = np.ones(1)
        base = interval_indexed_lp(loads, np.ones(2), releases, rates)
        doubled = interval_indexed_lp(loads, 2 * np.ones(2), releases, rates)
        assert doubled.objective == pytest.approx(2 * base.objective)


class TestWeightedCCTBound:
    def test_gap_semantics(self):
        b = WeightedCCTBound(
            lower_bound=10.0,
            isolation_bound=8.0,
            lp_completion_times={},
            n_intervals=1,
        )
        assert b.gap(15.0) == pytest.approx(1.5)
        degenerate = WeightedCCTBound(
            lower_bound=0.0,
            isolation_bound=0.0,
            lp_completion_times={},
            n_intervals=0,
        )
        assert degenerate.gap(123.0) == 1.0

    def test_dominates_isolation_bound(self):
        for seed in range(5):
            coflows, fabric = _random_instance(seed)
            b = weighted_cct_lower_bound(coflows, fabric)
            assert b.lower_bound >= b.isolation_bound - 1e-9

    def test_no_flows_instance(self):
        # Flow-less coflows complete at their arrival; the bound is the
        # weighted sum of releases exactly.
        coflows = [
            Coflow(flows=[], arrival_time=2.0, coflow_id=0, weight=3.0)
        ]
        b = weighted_cct_lower_bound(coflows, Fabric(n_ports=2, rate=1.0))
        assert b.lower_bound == pytest.approx(6.0)


class TestBoundVsSchedulers:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_scheduler_beats_the_bound(self, seed):
        """Validity: achieved sum(w*C) >= LP bound for every discipline."""
        coflows, fabric = _random_instance(seed)
        bound = weighted_cct_lower_bound(coflows, fabric)
        for name in SCHEDULER_NAMES:
            sim = CoflowSimulator(fabric, make_scheduler(name))
            res = sim.run(
                [
                    Coflow(
                        list(c.flows),
                        c.arrival_time,
                        c.coflow_id,
                        weight=c.weight,
                    )
                    for c in coflows
                ]
            )
            achieved = _achieved(coflows, res)
            assert achieved >= bound.lower_bound * (1 - 1e-9), (
                f"{name} beat the LP lower bound: "
                f"{achieved} < {bound.lower_bound}"
            )
            ceiling = CEILINGS.get(name)
            if ceiling is not None:
                assert bound.gap(achieved) <= ceiling, (
                    f"{name} exceeded its proven ratio: "
                    f"gap {bound.gap(achieved)} > {ceiling}"
                )
