"""Tests for CoflowSim trace-format interoperability."""

import pytest

from repro.network.coflowsim_trace import (
    read_coflowsim_trace,
    write_coflowsim_trace,
)
from repro.network.flow import Coflow, Flow

TRACE = """\
4 2
0 0 2 0 1 2 2:10 3:20
1 500 1 0 1 2:6
"""


class TestRead:
    def test_basic_parse(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(TRACE)
        n_ports, coflows = read_coflowsim_trace(path)
        assert n_ports == 4
        assert len(coflows) == 2
        c0, c1 = coflows
        assert c0.coflow_id == 0 and c0.arrival_time == 0.0
        assert c1.arrival_time == pytest.approx(0.5)

    def test_equal_split_volumes(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text(TRACE)
        _, (c0, _) = read_coflowsim_trace(path)
        # Reducer 2 gets 10 MB from 2 mappers -> 5 MB per mapper.
        vols = {(f.src, f.dst): f.volume for f in c0}
        assert vols[(0, 2)] == pytest.approx(5e6)
        assert vols[(1, 2)] == pytest.approx(5e6)
        assert vols[(0, 3)] == pytest.approx(10e6)

    def test_mapper_colocated_with_reducer_drops_local_flow(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 1\n0 0 2 0 1 1 1:8\n")
        _, (c,) = read_coflowsim_trace(path)
        # Mapper 1 == reducer 1: only the remote half travels.
        assert c.width == 1
        assert c.flows[0].src == 0
        assert c.flows[0].volume == pytest.approx(4e6)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("# a comment\n\n" + TRACE)
        n_ports, coflows = read_coflowsim_trace(path)
        assert n_ports == 4 and len(coflows) == 2

    def test_errors(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_coflowsim_trace(path)
        path.write_text("4\n")
        with pytest.raises(ValueError, match="header"):
            read_coflowsim_trace(path)
        path.write_text("4 2\n0 0 1 0 1 1:5\n")
        with pytest.raises(ValueError, match="promises"):
            read_coflowsim_trace(path)
        path.write_text("4 1\n0 0 1 0 1 15\n")
        with pytest.raises(ValueError, match="reducer token"):
            read_coflowsim_trace(path)
        path.write_text("2 1\n0 0 1 0 1 7:5\n")
        with pytest.raises(ValueError, match="port 7"):
            read_coflowsim_trace(path)


class TestWriteRoundTrip:
    def test_round_trip(self, tmp_path):
        src = tmp_path / "in.txt"
        src.write_text(TRACE)
        n_ports, coflows = read_coflowsim_trace(src)
        out = tmp_path / "out.txt"
        write_coflowsim_trace(coflows, out, n_ports=n_ports)
        n2, back = read_coflowsim_trace(out)
        assert n2 == n_ports
        for a, b in zip(coflows, back):
            assert a.arrival_time == pytest.approx(b.arrival_time)
            va = {(f.src, f.dst): f.volume for f in a}
            vb = {(f.src, f.dst): f.volume for f in b}
            assert set(va) == set(vb)
            for k in va:
                assert va[k] == pytest.approx(vb[k])

    def test_colocated_round_trip(self, tmp_path):
        path = tmp_path / "t.txt"
        path.write_text("3 1\n0 0 2 0 1 1 1:8\n")
        n_ports, coflows = read_coflowsim_trace(path)
        out = tmp_path / "o.txt"
        write_coflowsim_trace(coflows, out, n_ports=n_ports)
        _, back = read_coflowsim_trace(out)
        assert back[0].flows[0].volume == pytest.approx(4e6)

    def test_irregular_coflow_rejected(self, tmp_path):
        cf = Coflow([Flow(0, 1, 5.0), Flow(0, 2, 7.0), Flow(3, 1, 1.0)])
        with pytest.raises(ValueError, match="not representable"):
            write_coflowsim_trace([cf], tmp_path / "x.txt", n_ports=4)

    def test_port_bound_checked(self, tmp_path):
        cf = Coflow([Flow(0, 9, 5.0)])
        with pytest.raises(ValueError, match="exceeds"):
            write_coflowsim_trace([cf], tmp_path / "x.txt", n_ports=4)

    def test_trace_runs_through_simulator(self, tmp_path):
        from repro.network.fabric import Fabric
        from repro.network.schedulers import make_scheduler
        from repro.network.simulator import CoflowSimulator

        path = tmp_path / "t.txt"
        path.write_text(TRACE)
        n_ports, coflows = read_coflowsim_trace(path)
        sim = CoflowSimulator(
            Fabric(n_ports=n_ports, rate=128e6), make_scheduler("sebf")
        )
        res = sim.run(coflows)
        assert len(res.ccts) == 2
