"""Tests for the text-mode timeline visualizations."""

import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.network.visualize import gantt, throughput_sparkline


@pytest.fixture
def result():
    coflows = [
        Coflow([Flow(0, 1, 4.0)], coflow_id=0, name="alpha"),
        Coflow([Flow(2, 1, 2.0)], arrival_time=1.0, coflow_id=1, name="beta"),
    ]
    sim = CoflowSimulator(
        Fabric(n_ports=3, rate=1.0), make_scheduler("sebf"),
        record_timeline=True,
    )
    return sim.run(coflows)


class TestGantt:
    def test_one_line_per_coflow(self, result):
        chart = gantt(result)
        lines = chart.splitlines()
        assert len(lines) == 3  # two coflows + axis
        assert "cf0" in lines[0] and "cf1" in lines[1]
        assert "makespan" in lines[-1]

    def test_custom_names(self, result):
        chart = gantt(result, names={0: "alpha", 1: "beta"})
        assert "alpha" in chart and "beta" in chart

    def test_bars_reflect_durations(self, result):
        chart = gantt(result, width=40)
        bar0 = chart.splitlines()[0].split("|")[1]
        bar1 = chart.splitlines()[1].split("|")[1]
        assert bar0.count("█") > bar1.count("█")

    def test_empty_run(self):
        from repro.network.simulator import SimulationResult

        assert "no coflows" in gantt(SimulationResult({}, {}, 0.0, 0.0))

    def test_width_validation(self, result):
        with pytest.raises(ValueError, match="width"):
            gantt(result, width=5)


class TestSparkline:
    def test_length_matches_width(self, result):
        line = throughput_sparkline(result, width=30)
        assert len(line) == 30

    def test_busy_periods_nonblank(self, result):
        line = throughput_sparkline(result, width=20)
        assert any(c != " " for c in line)

    def test_requires_timeline(self):
        sim = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler("sebf")
        )
        res = sim.run([Coflow([Flow(0, 1, 1.0)])])
        with pytest.raises(ValueError, match="record_timeline"):
            throughput_sparkline(res)

    def test_width_validation(self, result):
        with pytest.raises(ValueError, match="width"):
            throughput_sparkline(result, width=0)
