"""Unit tests for the scheduling disciplines and their primitives."""

import numpy as np
import pytest

from repro.network.events import CoflowProgress, SchedulingContext
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import madd_rates, maxmin_fill
from repro.network.schedulers.dclas import DCLASScheduler
from repro.network.simulator import CoflowSimulator


def make_ctx(flows, n_ports=3, rate=1.0, sent=None, arrivals=None):
    """Build a SchedulingContext from (src, dst, remaining, coflow_id) rows."""
    srcs = np.array([f[0] for f in flows], dtype=np.int64)
    dsts = np.array([f[1] for f in flows], dtype=np.int64)
    rem = np.array([f[2] for f in flows], dtype=float)
    cids = np.array([f[3] for f in flows], dtype=np.int64)
    progress = {}
    for cid in np.unique(cids):
        mask = cids == cid
        progress[int(cid)] = CoflowProgress(
            coflow_id=int(cid),
            arrival_time=0.0 if arrivals is None else arrivals[int(cid)],
            total_volume=float(rem[mask].sum()),
            width=int(mask.sum()),
            sent_bytes=0.0 if sent is None else sent[int(cid)],
        )
    return SchedulingContext(
        time=0.0,
        fabric=Fabric(n_ports=n_ports, rate=rate),
        srcs=srcs,
        dsts=dsts,
        remaining=rem,
        coflow_ids=cids,
        progress=progress,
    )


class TestMaxMinFill:
    def test_single_flow_gets_line_rate(self):
        srcs, dsts = np.array([0]), np.array([1])
        rates = maxmin_fill(srcs, dsts, np.ones(2), np.ones(2))
        assert rates[0] == pytest.approx(1.0)

    def test_two_flows_share_common_egress(self):
        srcs, dsts = np.array([0, 0]), np.array([1, 2])
        rates = maxmin_fill(srcs, dsts, np.ones(3), np.ones(3))
        np.testing.assert_allclose(rates, [0.5, 0.5])

    def test_classic_maxmin_example(self):
        # Flows: A shares port 0 egress with B; C alone on port 2->1.
        # A: 0->1, B: 0->2, C: 2->1. Ingress 1 shared by A and C.
        srcs = np.array([0, 0, 2])
        dsts = np.array([1, 2, 1])
        rates = maxmin_fill(srcs, dsts, np.ones(3), np.ones(3))
        np.testing.assert_allclose(rates, [0.5, 0.5, 0.5])

    def test_subset_restriction(self):
        srcs = np.array([0, 0])
        dsts = np.array([1, 2])
        rates = maxmin_fill(
            srcs, dsts, np.ones(3), np.ones(3), subset=np.array([1])
        )
        assert rates[0] == 0.0 and rates[1] == pytest.approx(1.0)

    def test_increments_existing_rates(self):
        srcs, dsts = np.array([0]), np.array([1])
        rates = np.array([0.3])
        out = maxmin_fill(srcs, dsts, np.array([0.7, 0.7]), np.array([0.7, 0.7]),
                          rates=rates)
        assert out[0] == pytest.approx(1.0)

    def test_respects_port_capacity(self):
        rng = np.random.default_rng(0)
        n = 6
        m = 30
        srcs = rng.integers(0, n, m)
        dsts = (srcs + 1 + rng.integers(0, n - 1, m)) % n
        res_out, res_in = np.ones(n), np.ones(n)
        rates = maxmin_fill(srcs, dsts, res_out, res_in)
        out = np.bincount(srcs, weights=rates, minlength=n)
        inb = np.bincount(dsts, weights=rates, minlength=n)
        assert (out <= 1 + 1e-9).all() and (inb <= 1 + 1e-9).all()


class TestMADD:
    def test_flows_finish_together(self):
        srcs = np.array([0, 2])
        dsts = np.array([1, 1])
        rem = np.array([3.0, 1.0])
        rates = np.zeros(2)
        ok = madd_rates(srcs, dsts, rem, np.ones(3), np.ones(3),
                        np.array([0, 1]), rates)
        assert ok
        # Gamma = 4 (ingress port 1); rates are rem / 4.
        np.testing.assert_allclose(rates, [0.75, 0.25])
        np.testing.assert_allclose(rem / rates, [4.0, 4.0])

    def test_blocked_when_port_exhausted(self):
        srcs, dsts = np.array([0]), np.array([1])
        rem = np.array([1.0])
        rates = np.zeros(1)
        ok = madd_rates(srcs, dsts, rem, np.array([0.0, 1.0]), np.ones(2),
                        np.array([0]), rates)
        assert not ok and rates[0] == 0.0

    def test_empty_subset_ok(self):
        ok = madd_rates(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0),
            np.ones(2), np.ones(2), np.empty(0, np.int64), np.empty(0),
        )
        assert ok


class TestOrderings:
    def test_scf_orders_by_remaining_bytes(self):
        ctx = make_ctx([(0, 1, 10.0, 0), (0, 2, 1.0, 1)])
        sched = make_scheduler("scf", backfill=False)
        rates = sched.allocate(ctx)
        # Small coflow served first at line rate; big gets nothing on port 0.
        assert rates[1] == pytest.approx(1.0)
        assert rates[0] == pytest.approx(0.0)

    def test_fifo_orders_by_arrival(self):
        ctx = make_ctx(
            [(0, 1, 10.0, 0), (0, 2, 1.0, 1)], arrivals={0: 0.0, 1: 5.0}
        )
        sched = make_scheduler("fifo", backfill=False)
        rates = sched.allocate(ctx)
        assert rates[0] == pytest.approx(1.0) and rates[1] == pytest.approx(0.0)

    def test_ncf_prefers_narrow(self):
        ctx = make_ctx(
            [(0, 1, 1.0, 0), (1, 2, 1.0, 0), (0, 2, 9.0, 1)]
        )
        sched = make_scheduler("ncf", backfill=False)
        rates = sched.allocate(ctx)
        # Coflow 1 is narrower (1 flow vs 2) and gets priority on port 0.
        assert rates[2] == pytest.approx(1.0)

    def test_backfill_uses_leftover_capacity(self):
        ctx = make_ctx([(0, 1, 10.0, 0), (2, 1, 10.0, 1), (2, 0, 4.0, 1)])
        no_bf = make_scheduler("sebf", backfill=False).allocate(ctx)
        bf = make_scheduler("sebf", backfill=True).allocate(ctx)
        assert bf.sum() >= no_bf.sum() - 1e-12

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("wfq")


class TestDCLAS:
    def test_queue_thresholds(self):
        d = DCLASScheduler(first_threshold=10e6, multiplier=10, num_queues=4)
        assert d.queue_of(0.0) == 0
        assert d.queue_of(9.99e6) == 0
        assert d.queue_of(10e6) == 1
        assert d.queue_of(99e6) == 1
        assert d.queue_of(100e6) == 2
        assert d.queue_of(1e12) == 3  # clamped to lowest queue

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DCLASScheduler(first_threshold=0)
        with pytest.raises(ValueError):
            DCLASScheduler(multiplier=1.0)
        with pytest.raises(ValueError):
            DCLASScheduler(num_queues=0)

    def test_heavy_senders_sink_in_priority(self):
        # Coflow 0 already sent 1 GB, coflow 1 nothing: 1 wins port 0.
        ctx = make_ctx(
            [(0, 1, 5.0, 0), (0, 2, 5.0, 1)], sent={0: 1e9, 1: 0.0}
        )
        rates = DCLASScheduler().allocate(ctx)
        assert rates[1] == pytest.approx(1.0)
        assert rates[0] == pytest.approx(0.0)

    def test_nonclairvoyant_flag(self):
        assert DCLASScheduler.clairvoyant is False

    def test_dclas_finishes_small_coflow_early_end_to_end(self):
        fab = Fabric(n_ports=3, rate=1.0)
        big = Coflow([Flow(0, 1, 50.0)], name="big")
        small = Coflow([Flow(0, 2, 2.0)], arrival_time=1.0, name="small")
        sim = CoflowSimulator(
            fab, DCLASScheduler(first_threshold=5.0, multiplier=2, num_queues=4)
        )
        res = sim.run([big, small])
        # Big coflow crosses the 5-byte threshold at t=5 and sinks to
        # queue 1; small (queue 0) then preempts it on the shared egress
        # port, runs t=5..7, and big resumes until t=52.
        assert res.ccts[1] == pytest.approx(6.0)
        assert res.ccts[0] == pytest.approx(52.0)


class TestRatesValidUntil:
    """The event-horizon contract: who may promise reusable rates."""

    def _horizon(self, name):
        sched = make_scheduler(name)
        ctx = make_ctx([(0, 1, 4.0, 0), (1, 2, 2.0, 1)])
        rates = sched.allocate(ctx)
        return sched.rates_valid_until(ctx, rates)

    def test_fair_and_sequential_never_expire(self):
        # Their allocations read only endpoints, capacities and static
        # weights, so under an unchanged active set they hold forever.
        assert self._horizon("fair") == np.inf
        assert self._horizon("sequential") == np.inf

    def test_volume_readers_expire_immediately(self):
        # Anything that ranks on remaining volume or attained service
        # must keep the conservative default: reuse would freeze ranks
        # that drain between epochs.
        for name in ("sebf", "dclas", "scf", "ncf", "wss"):
            assert self._horizon(name) == 0.0  # == ctx.time
