"""Tests for Varys' deadline mode (admission control + JIT rates)."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers.deadline import DeadlineScheduler
from repro.network.simulator import CoflowSimulator


def simulate(coflows, *, n_ports=3, rate=1.0, backfill=True):
    sched = DeadlineScheduler(backfill=backfill)
    sim = CoflowSimulator(Fabric(n_ports=n_ports, rate=rate), sched)
    return sim.run(coflows), sched


class TestCoflowDeadlineField:
    def test_invalid_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            Coflow([Flow(0, 1, 1.0)], deadline=0.0)

    def test_deadline_survives_id_assignment(self):
        res, sched = simulate([Coflow([Flow(0, 1, 1.0)], deadline=5.0)])
        assert sched.admitted(0) is True


class TestAdmission:
    def test_feasible_deadline_met_exactly_without_backfill(self):
        cf = Coflow([Flow(0, 1, 4.0)], deadline=8.0)
        res, sched = simulate([cf], backfill=False)
        assert sched.admitted(0) is True
        # JIT rate = 0.5; completion exactly at the deadline.
        assert res.ccts[0] == pytest.approx(8.0)

    def test_backfill_beats_deadline(self):
        cf = Coflow([Flow(0, 1, 4.0)], deadline=8.0)
        res, _ = simulate([cf], backfill=True)
        assert res.ccts[0] == pytest.approx(4.0)  # full line rate

    def test_infeasible_deadline_rejected_but_still_served(self):
        cf = Coflow([Flow(0, 1, 10.0)], deadline=5.0)  # needs rate 2 > 1
        res, sched = simulate([cf])
        assert sched.admitted(0) is False
        # Best-effort: finishes at line rate, missing the deadline.
        assert res.ccts[0] == pytest.approx(10.0)

    def test_admission_accounts_for_existing_guarantees(self):
        # Coflow 0 reserves rate 0.8 on port 0->1; coflow 1 needs 0.5 on
        # the same ports within its deadline -> must be rejected.
        c0 = Coflow([Flow(0, 1, 8.0)], deadline=10.0)
        c1 = Coflow([Flow(0, 2, 5.0)], arrival_time=0.0, deadline=10.0)
        c2 = Coflow([Flow(0, 1, 5.0)], arrival_time=0.0, deadline=10.0)
        res, sched = simulate([c0, c1, c2], backfill=False)
        assert sched.admitted(0) is True
        # c1 uses a different ingress but the same egress: 0.8 + 0.5 > 1.
        assert sched.admitted(1) is False
        assert sched.admitted(2) is False

    def test_deadlineless_coflows_are_best_effort(self):
        guaranteed = Coflow([Flow(0, 1, 5.0)], deadline=10.0)
        besteffort = Coflow([Flow(0, 2, 5.0)])
        res, sched = simulate([guaranteed, besteffort])
        assert sched.admitted(0) is True
        assert sched.admitted(1) is None
        # Best-effort still completes (backfill gives it the leftover).
        assert res.ccts[1] <= 10.0 + 1e-9

    def test_guaranteed_coflow_immune_to_later_load(self):
        g = Coflow([Flow(0, 1, 6.0)], deadline=10.0)
        noise = [
            Coflow([Flow(0, 1, 50.0)], arrival_time=1.0),
            Coflow([Flow(2, 1, 50.0)], arrival_time=1.0),
        ]
        res, sched = simulate([g, *noise], backfill=False)
        assert res.completion_times[0] <= 10.0 + 1e-6


class TestReset:
    def test_reset_clears_admissions(self):
        sched = DeadlineScheduler()
        sim = CoflowSimulator(Fabric(n_ports=2, rate=1.0), sched)
        sim.run([Coflow([Flow(0, 1, 1.0)], deadline=2.0)])
        assert sched.admitted(0) is True
        sim.run([Coflow([Flow(0, 1, 10.0)], deadline=1.0)])
        assert sched.admitted(0) is False  # fresh verdict after reset


class TestIO:
    def test_deadline_round_trips_through_json(self, tmp_path):
        from repro.network.io import load_coflows, save_coflows

        cf = Coflow([Flow(0, 1, 2.0)], deadline=7.5)
        path = tmp_path / "c.json"
        save_coflows([cf], path)
        back = load_coflows(path)[0]
        assert back.deadline == 7.5

    def test_missing_deadline_stays_none(self, tmp_path):
        from repro.network.io import load_coflows, save_coflows

        path = tmp_path / "c.json"
        save_coflows([Coflow([Flow(0, 1, 2.0)])], path)
        assert load_coflows(path)[0].deadline is None
