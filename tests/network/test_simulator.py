"""Integration tests for the event-driven coflow simulator."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def simulate(coflows, *, n_ports=3, rate=1.0, scheduler="sebf", **kwargs):
    fab = Fabric(n_ports=n_ports, rate=rate)
    sim = CoflowSimulator(fab, make_scheduler(scheduler), **kwargs)
    return sim.run(coflows)


class TestSingleCoflow:
    def test_cct_equals_closed_form_bottleneck(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0), Flow(1, 2, 2.0)])
        res = simulate([cf])
        assert res.max_cct == pytest.approx(cf.bottleneck(3, 1.0))

    @pytest.mark.parametrize("scheduler", ["sebf", "fifo", "scf", "ncf"])
    def test_all_madd_schedulers_optimal_for_one_coflow(self, scheduler):
        rng = np.random.default_rng(42)
        vol = rng.integers(1, 9, size=(4, 4)).astype(float)
        np.fill_diagonal(vol, 0.0)
        flows = [
            Flow(i, j, vol[i, j]) for i in range(4) for j in range(4) if vol[i, j]
        ]
        cf = Coflow(flows)
        res = simulate([cf], n_ports=4, scheduler=scheduler)
        assert res.max_cct == pytest.approx(cf.bottleneck(4, 1.0))

    def test_rate_scales_cct(self):
        cf = Coflow([Flow(0, 1, 10.0)])
        res = simulate([cf], rate=2.0)
        assert res.max_cct == pytest.approx(5.0)

    def test_fair_sharing_at_least_optimal(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0), Flow(1, 2, 2.0)])
        res = simulate([cf], scheduler="fair")
        assert res.max_cct >= cf.bottleneck(3, 1.0) - 1e-9


class TestMultipleCoflows:
    def test_arrival_offsets_respected(self):
        c1 = Coflow([Flow(0, 1, 2.0)], arrival_time=0.0)
        c2 = Coflow([Flow(0, 1, 2.0)], arrival_time=10.0)
        res = simulate([c1, c2])
        assert res.completion_times[0] == pytest.approx(2.0)
        # Second coflow starts at t=10 with a free fabric.
        assert res.completion_times[1] == pytest.approx(12.0)
        assert res.ccts[1] == pytest.approx(2.0)

    def test_sebf_prioritizes_small_coflow(self):
        big = Coflow([Flow(0, 1, 100.0)], arrival_time=0.0, name="big")
        small = Coflow([Flow(0, 2, 1.0)], arrival_time=0.0, name="small")
        res = simulate([big, small])
        # Distinct destinations: both can progress; small finishes first.
        assert res.ccts[1] < res.ccts[0]

    def test_sebf_average_cct_not_worse_than_fifo_on_contention(self):
        # Both coflows fight for egress port 0; SJF-style ordering wins.
        big = Coflow([Flow(0, 1, 100.0)], arrival_time=0.0)
        small = Coflow([Flow(0, 2, 1.0)], arrival_time=0.0)
        sebf = simulate([big, small], scheduler="sebf")
        fifo = simulate([big, small], scheduler="fifo")
        assert sebf.average_cct <= fifo.average_cct + 1e-9

    def test_makespan_is_last_completion(self):
        c1 = Coflow([Flow(0, 1, 2.0)])
        c2 = Coflow([Flow(2, 1, 5.0)])
        res = simulate([c1, c2])
        assert res.makespan == max(res.completion_times.values())

    def test_total_bytes_accounted(self):
        c1 = Coflow([Flow(0, 1, 2.0)])
        c2 = Coflow([Flow(2, 1, 5.0)])
        res = simulate([c1, c2])
        assert res.total_bytes == 7.0


class TestEdgeCases:
    def test_no_coflows(self):
        res = simulate([])
        assert res.makespan == 0.0 and res.ccts == {}

    def test_empty_coflow_completes_at_arrival(self):
        res = simulate([Coflow([], arrival_time=3.0)])
        assert res.completion_times[0] == pytest.approx(3.0)
        assert res.ccts[0] == pytest.approx(0.0)

    def test_port_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="references port"):
            simulate([Coflow([Flow(0, 5, 1.0)])], n_ports=3)

    def test_duplicate_ids_rejected(self):
        c1 = Coflow([Flow(0, 1, 1.0)], coflow_id=7)
        c2 = Coflow([Flow(1, 2, 1.0)], coflow_id=7)
        with pytest.raises(ValueError, match="duplicate"):
            simulate([c1, c2])

    def test_timeline_recording(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(1, 2, 2.0)])
        fab = Fabric(n_ports=3, rate=1.0)
        sim = CoflowSimulator(fab, make_scheduler("sebf"), record_timeline=True)
        res = sim.run([cf])
        assert res.epochs
        total = sum(e.duration * e.aggregate_rate for e in res.epochs)
        assert total == pytest.approx(cf.total_volume)

    def test_infeasible_scheduler_caught(self):
        class Greedy(type(make_scheduler("fair"))):
            def allocate(self, ctx):
                return np.full(ctx.n_flows, 10.0)

        fab = Fabric(n_ports=3, rate=1.0)
        sim = CoflowSimulator(fab, Greedy())
        with pytest.raises(ValueError, match="capacity violated"):
            sim.run([Coflow([Flow(0, 1, 5.0)])])

    def test_wrong_rate_shape_caught(self):
        class Short(type(make_scheduler("fair"))):
            def allocate(self, ctx):
                return np.array([1.0, 1.0, 1.0])

        fab = Fabric(n_ports=3, rate=1.0)
        sim = CoflowSimulator(fab, Short())
        with pytest.raises(ValueError, match="expected"):
            sim.run([Coflow([Flow(0, 1, 5.0)])])


class TestSequentialScheduler:
    def test_serializes_to_total_volume(self):
        # Three flows on distinct port pairs: an optimal schedule would
        # finish in max-volume time, the sequential one in the sum.
        cf = Coflow([Flow(0, 1, 3.0), Flow(1, 2, 2.0), Flow(2, 0, 1.0)])
        res = simulate([cf], scheduler="sequential")
        assert res.max_cct == pytest.approx(6.0)
        opt = simulate([cf], scheduler="sebf")
        assert opt.max_cct == pytest.approx(3.0)
