"""Unit tests for the Flow/Coflow abstraction."""

import numpy as np
import pytest

from repro.network.flow import Coflow, Flow, coflow_from_matrix


class TestFlow:
    def test_valid_flow(self):
        f = Flow(src=0, dst=1, volume=10.0)
        assert (f.src, f.dst, f.volume) == (0, 1, 10.0)

    def test_local_flow_rejected(self):
        with pytest.raises(ValueError, match="local movement"):
            Flow(src=2, dst=2, volume=1.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValueError, match="volume"):
            Flow(src=0, dst=1, volume=0.0)

    def test_negative_volume_rejected(self):
        with pytest.raises(ValueError, match="volume"):
            Flow(src=0, dst=1, volume=-3.0)

    def test_negative_port_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Flow(src=-1, dst=1, volume=1.0)


class TestCoflow:
    def test_merges_duplicate_pairs(self):
        cf = Coflow([Flow(0, 1, 2.0), Flow(0, 1, 3.0), Flow(1, 2, 1.0)])
        assert cf.width == 2
        vols = {(f.src, f.dst): f.volume for f in cf}
        assert vols == {(0, 1): 5.0, (1, 2): 1.0}

    def test_total_volume(self):
        cf = Coflow([Flow(0, 1, 2.0), Flow(1, 0, 3.0)])
        assert cf.total_volume == 5.0

    def test_flow_ids_assigned_sequentially(self):
        cf = Coflow([Flow(2, 0, 1.0), Flow(0, 1, 1.0)])
        assert [f.flow_id for f in cf] == [0, 1]

    def test_max_port(self):
        cf = Coflow([Flow(0, 7, 1.0)])
        assert cf.max_port == 7
        assert Coflow([]).max_port == -1

    def test_port_loads(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0), Flow(1, 2, 2.0)])
        send, recv = cf.port_loads(3)
        assert send.tolist() == [3.0, 2.0, 1.0]
        assert recv.tolist() == [0.0, 4.0, 2.0]

    def test_bottleneck_is_max_port_load_over_rate(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(2, 1, 1.0), Flow(1, 2, 2.0)])
        assert cf.bottleneck(3, rate=1.0) == 4.0
        assert cf.bottleneck(3, rate=2.0) == 2.0

    def test_bottleneck_empty_coflow(self):
        assert Coflow([]).bottleneck(3) == 0.0

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="arrival_time"):
            Coflow([Flow(0, 1, 1.0)], arrival_time=-1.0)

    def test_volume_matrix_roundtrip(self):
        cf = Coflow([Flow(0, 1, 3.0), Flow(1, 2, 2.0)])
        mat = cf.volume_matrix(3)
        assert mat[0, 1] == 3.0 and mat[1, 2] == 2.0
        assert mat.sum() == 5.0


class TestCoflowFromMatrix:
    def test_diagonal_ignored(self):
        vol = np.array([[5.0, 1.0], [2.0, 7.0]])
        cf = coflow_from_matrix(vol)
        assert cf.total_volume == 3.0
        assert cf.width == 2

    def test_zero_entries_skipped(self):
        vol = np.zeros((3, 3))
        vol[0, 1] = 4.0
        cf = coflow_from_matrix(vol)
        assert cf.width == 1

    def test_min_volume_threshold(self):
        vol = np.array([[0.0, 0.5], [3.0, 0.0]])
        cf = coflow_from_matrix(vol, min_volume=1.0)
        assert cf.width == 1 and cf.flows[0].volume == 3.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            coflow_from_matrix(np.zeros((2, 3)))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            coflow_from_matrix(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_matches_coflow_port_loads(self):
        rng = np.random.default_rng(3)
        vol = rng.integers(0, 10, size=(5, 5)).astype(float)
        cf = coflow_from_matrix(vol)
        send, recv = cf.port_loads(5)
        off = vol.copy()
        np.fill_diagonal(off, 0.0)
        np.testing.assert_allclose(send, off.sum(axis=1))
        np.testing.assert_allclose(recv, off.sum(axis=0))
