"""The guaranteed weighted-CCT schedulers (`wcct5`, `lpcct`)."""

import numpy as np
import pytest

from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import (
    LPOrderingScheduler,
    WeightedApproxScheduler,
    make_scheduler,
)
from repro.network.simulator import CoflowSimulator

APPROX = ("wcct5", "lpcct")


def _identical_pair(w0, w1):
    """Two byte-identical coflows differing only in weight."""
    return [
        Coflow([Flow(0, 1, 10.0)], 0.0, coflow_id=0, weight=w0),
        Coflow([Flow(0, 1, 10.0)], 0.0, coflow_id=1, weight=w1),
    ]


class TestRegistry:
    def test_construction_by_name(self):
        assert isinstance(make_scheduler("wcct5"), WeightedApproxScheduler)
        assert isinstance(make_scheduler("lpcct"), LPOrderingScheduler)

    def test_names(self):
        assert WeightedApproxScheduler.name == "wcct5"
        assert LPOrderingScheduler.name == "lpcct"


class TestWeightAwareness:
    @pytest.mark.parametrize("name", APPROX)
    def test_heavy_coflow_finishes_first(self, name):
        # Two identical coflows sharing one port pair: weighted-CCT
        # scheduling must serve the weight-10 one to completion first.
        coflows = _identical_pair(1.0, 10.0)
        res = CoflowSimulator(
            Fabric(n_ports=2, rate=1.0), make_scheduler(name)
        ).run(coflows)
        assert res.completion_times[1] < res.completion_times[0]
        # Serial service of equal 10-byte flows at rate 1.
        assert res.completion_times[1] == pytest.approx(10.0)
        assert res.completion_times[0] == pytest.approx(20.0)

    @pytest.mark.parametrize("name", APPROX)
    def test_single_coflow_hits_isolation_bottleneck(self, name):
        # Alone on the fabric, any work-conserving order must finish at
        # Gamma = max port load / rate.
        cf = Coflow(
            [Flow(0, 1, 6.0), Flow(0, 2, 4.0), Flow(2, 1, 2.0)],
            0.0,
            coflow_id=0,
        )
        res = CoflowSimulator(
            Fabric(n_ports=3, rate=1.0), make_scheduler(name)
        ).run([cf])
        assert res.ccts[0] == pytest.approx(10.0)  # port 0 egress = 6+4


class TestDeterminismAndReuse:
    def _workload(self, seed):
        rng = np.random.default_rng(seed)
        coflows = []
        for cid in range(6):
            flows = []
            for _ in range(int(rng.integers(1, 4))):
                s, d = rng.choice(5, size=2, replace=False)
                flows.append(Flow(int(s), int(d), float(rng.uniform(1, 9))))
            coflows.append(
                Coflow(
                    flows,
                    float(rng.uniform(0, 3)),
                    coflow_id=cid,
                    weight=float(rng.integers(1, 5)),
                )
            )
        return coflows

    @pytest.mark.parametrize("name", APPROX)
    def test_scheduler_object_is_reusable_across_runs(self, name):
        # reset() must clear the cached permutation: running instance A,
        # then B, then A again reproduces A's result bit-for-bit.
        sched = make_scheduler(name)
        fabric = Fabric(n_ports=5, rate=1.0)

        def run(seed):
            return CoflowSimulator(fabric, sched).run(self._workload(seed))

        first = run(0)
        run(1)
        again = run(0)
        assert first.ccts == again.ccts
        assert first.completion_times == again.completion_times
        assert first.n_epochs == again.n_epochs

    def test_lpcct_survives_dead_ports(self):
        # A port at rate zero must not crash the LP ordering (fabric
        # dynamics can zero rates mid-run); coflows pinned on the dead
        # port are simply ranked last.
        fabric = Fabric(n_ports=3, rate=1.0)
        fabric.egress_rates[2] = 0.0
        sched = make_scheduler("lpcct")
        cf = Coflow([Flow(0, 1, 5.0)], 0.0, coflow_id=0)
        res = CoflowSimulator(fabric, sched).run([cf])
        assert res.ccts[0] == pytest.approx(5.0)
