"""Weighted-CCT metrics threaded through analysis, stats and traces.

The weighted objective is an *extension*: at unit weights every surface
must reproduce the unweighted numbers bit-identically, and coflow
weights must never perturb the scheduling of weight-oblivious
disciplines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.analysis import analyze
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator
from repro.obs.instrument import Tracer
from repro.obs.stats import _weighted_percentiles, summarize_trace


@st.composite
def weighted_workloads(draw, unit_weights=False):
    n_ports = draw(st.integers(3, 6))
    n_coflows = draw(st.integers(2, 6))
    coflows = []
    for cid in range(n_coflows):
        flows = []
        for _ in range(draw(st.integers(1, 3))):
            src = draw(st.integers(0, n_ports - 1))
            dst = draw(st.integers(0, n_ports - 2))
            if dst >= src:
                dst += 1
            vol = draw(st.floats(0.1, 10.0, allow_nan=False))
            flows.append(Flow(src, dst, vol))
        weight = 1.0 if unit_weights else draw(
            st.floats(0.5, 8.0, allow_nan=False)
        )
        coflows.append(
            Coflow(
                flows,
                draw(st.floats(0.0, 5.0, allow_nan=False)),
                coflow_id=cid,
                weight=weight,
            )
        )
    return n_ports, coflows


def _run(n_ports, coflows, scheduler="sebf"):
    fabric = Fabric(n_ports=n_ports, rate=1.0)
    res = CoflowSimulator(fabric, make_scheduler(scheduler)).run(
        [Coflow(list(c.flows), c.arrival_time, c.coflow_id, weight=c.weight)
         for c in coflows]
    )
    return fabric, res


class TestUnitWeightBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(weighted_workloads(unit_weights=True))
    def test_unit_weights_reproduce_unweighted_cct(self, wl):
        """At w == 1 the weighted aggregates ARE the unweighted ones."""
        n_ports, coflows = wl
        fabric, res = _run(n_ports, coflows)
        report = analyze(res, coflows, fabric)
        # Bit-identical, not approximately equal: the weighted mean at
        # unit weights reduces to the same pairwise reduction np.mean
        # performs.
        assert report.weighted_average_cct == report.average_cct
        # The total is order-sensitive in fp, so only approximate here.
        assert report.total_weighted_cct == pytest.approx(
            sum(res.ccts[c.coflow_id] for c in coflows)
        )

    @settings(max_examples=25, deadline=None)
    @given(weighted_workloads(), st.sampled_from(("sebf", "scf", "fifo")))
    def test_weights_never_perturb_oblivious_schedulers(self, wl, scheduler):
        """Weight-oblivious disciplines must ignore ``Coflow.weight``.

        ``fair`` is deliberately absent: it runs *weighted* max-min by
        default, so coflow weights legitimately change its rates.
        """
        n_ports, coflows = wl
        _, weighted = _run(n_ports, coflows, scheduler)
        stripped = [
            Coflow(list(c.flows), c.arrival_time, c.coflow_id, weight=1.0)
            for c in coflows
        ]
        _, unit = _run(n_ports, stripped, scheduler)
        assert weighted.ccts == unit.ccts
        assert weighted.completion_times == unit.completion_times
        assert weighted.n_epochs == unit.n_epochs


class TestAnalysisWeighting:
    def test_weighted_average_weighs_the_heavy_coflow(self):
        coflows = [
            Coflow([Flow(0, 1, 10.0)], 0.0, coflow_id=0, weight=1.0),
            Coflow([Flow(2, 3, 2.0)], 0.0, coflow_id=1, weight=9.0),
        ]
        fabric, res = _run(4, coflows)
        report = analyze(res, coflows, fabric)
        expected = (1.0 * res.ccts[0] + 9.0 * res.ccts[1]) / 10.0
        assert report.weighted_average_cct == pytest.approx(expected)
        assert report.weighted_average_cct < report.average_cct

    def test_summary_mentions_weighted_only_when_it_differs(self):
        coflows = [
            Coflow([Flow(0, 1, 5.0)], 0.0, coflow_id=0, weight=1.0),
            Coflow([Flow(2, 3, 1.0)], 0.0, coflow_id=1, weight=1.0),
        ]
        fabric, res = _run(4, coflows)
        assert "w-avg" not in analyze(res, coflows, fabric).summary()
        heavy = [
            Coflow(list(c.flows), c.arrival_time, c.coflow_id, weight=w)
            for c, w in zip(coflows, (1.0, 7.0))
        ]
        fabric, res = _run(4, heavy)
        assert "w-avg" in analyze(res, heavy, fabric).summary()


class TestStatsWeighting:
    def test_weighted_percentiles_basic(self):
        values = [1.0, 2.0, 3.0, 4.0]
        # Weight mass concentrated on the largest value drags every
        # percentile there.
        out = _weighted_percentiles(values, [1.0, 1.0, 1.0, 97.0])
        assert out["p50"] == 4.0
        assert out["p99"] == 4.0
        assert out["mean"] == pytest.approx((1 + 2 + 3 + 4 * 97) / 100)

    def test_weighted_percentiles_scale_invariant(self):
        values = [3.0, 1.0, 2.0]
        weights = [2.0, 1.0, 3.0]
        a = _weighted_percentiles(values, weights)
        b = _weighted_percentiles(values, [10 * w for w in weights])
        for key in ("p50", "p95", "p99", "max"):
            assert a[key] == b[key]

    def _traced_run(self, weights):
        coflows = [
            Coflow([Flow(0, 1, 4.0)], 0.0, coflow_id=0, weight=weights[0]),
            Coflow([Flow(2, 3, 2.0)], 0.0, coflow_id=1, weight=weights[1]),
        ]
        tracer = Tracer()
        CoflowSimulator(
            Fabric(n_ports=4, rate=1.0),
            make_scheduler("sebf"),
            instrumentation=tracer,
        ).run(coflows)
        return tracer

    def test_trace_carries_weights_into_summary(self):
        tracer = self._traced_run((1.0, 5.0))
        submits = [e for e in tracer.events if e["kind"] == "coflow_submit"]
        assert sorted(e["weight"] for e in submits) == [1.0, 5.0]
        summary = summarize_trace(tracer.events)
        assert "cct_weighted_seconds" in summary

    def test_unit_weight_trace_stays_unweighted(self):
        tracer = self._traced_run((1.0, 1.0))
        summary = summarize_trace(tracer.events)
        assert "cct_weighted_seconds" not in summary
