"""Tests for the post-simulation analysis module."""

import numpy as np
import pytest

from repro.network.analysis import analyze, jain_index
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


class TestJainIndex:
    def test_equal_values(self):
        assert jain_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([-1.0])


class TestAnalyze:
    def run(self, coflows, scheduler="sebf", n_ports=3, rate=1.0):
        fab = Fabric(n_ports=n_ports, rate=rate)
        res = CoflowSimulator(fab, make_scheduler(scheduler)).run(coflows)
        return analyze(res, coflows, fab), res

    def test_isolated_coflow_has_unit_slowdown(self):
        cf = Coflow([Flow(0, 1, 4.0)])
        report, _ = self.run([cf])
        assert report.average_slowdown == pytest.approx(1.0)
        assert report.max_slowdown == pytest.approx(1.0)
        assert report.fairness == pytest.approx(1.0)

    def test_contention_raises_slowdown(self):
        c1 = Coflow([Flow(0, 1, 10.0)])
        c2 = Coflow([Flow(0, 2, 10.0)])  # shares egress 0
        report, _ = self.run([c1, c2], scheduler="fair")
        assert report.max_slowdown > 1.0

    def test_utilization_bounds(self):
        cf = Coflow([Flow(0, 1, 4.0), Flow(2, 1, 4.0)])
        report, _ = self.run([cf])
        assert 0 < report.utilization <= 1.0

    def test_deadline_hit_rate(self):
        ok = Coflow([Flow(0, 1, 2.0)], deadline=10.0, coflow_id=0)
        miss = Coflow([Flow(0, 2, 50.0)], deadline=1.0, coflow_id=1)
        fab = Fabric(n_ports=3, rate=1.0)
        res = CoflowSimulator(fab, make_scheduler("deadline")).run([ok, miss])
        report = analyze(res, [ok, miss], fab)
        assert report.deadline_hit_rate == pytest.approx(0.5)

    def test_no_deadlines_is_nan(self):
        report, _ = self.run([Coflow([Flow(0, 1, 1.0)])])
        assert np.isnan(report.deadline_hit_rate)

    def test_missing_coflow_rejected(self):
        cf = Coflow([Flow(0, 1, 1.0)], coflow_id=0)
        fab = Fabric(n_ports=2, rate=1.0)
        res = CoflowSimulator(fab, make_scheduler("sebf")).run([cf])
        other = Coflow([Flow(0, 1, 1.0)], coflow_id=7)
        with pytest.raises(ValueError, match="missing"):
            analyze(res, [other], fab)

    def test_summary_renders(self):
        report, _ = self.run([Coflow([Flow(0, 1, 1.0)])])
        s = report.summary()
        assert "avg CCT" in s and "util" in s

    def test_sebf_beats_fair_on_average_slowdown(self):
        from repro.workloads.coflowmix import CoflowMixConfig, generate_coflow_mix

        cfg = CoflowMixConfig(n_ports=12, n_coflows=30, arrival_rate=5.0, seed=4)
        coflows = generate_coflow_mix(cfg)
        fab = Fabric(n_ports=12, rate=128e6)
        rep = {}
        for s in ("sebf", "fair"):
            res = CoflowSimulator(fab, make_scheduler(s)).run(coflows)
            rep[s] = analyze(res, coflows, fab)
        assert rep["sebf"].average_cct <= rep["fair"].average_cct + 1e-9
