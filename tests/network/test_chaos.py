"""Tests for the seeded chaos (random failure schedule) harness."""

import numpy as np
import pytest

from repro.network.chaos import ChaosConfig, chaos_schedule
from repro.network.fabric import Fabric
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.simulator import CoflowSimulator


def make_fabric(n=6):
    return Fabric(n_ports=n, rate=1.0)


class TestChaosConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(mtbf=0.0, mttr=1.0, horizon=10.0)
        with pytest.raises(ValueError):
            ChaosConfig(mtbf=1.0, mttr=-1.0, horizon=10.0)
        with pytest.raises(ValueError):
            ChaosConfig(mtbf=1.0, mttr=1.0, horizon=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(mtbf=1.0, mttr=1.0, horizon=10.0, min_alive=0)

    def test_port_subset_validated(self):
        cfg = ChaosConfig(mtbf=1.0, mttr=1.0, horizon=5.0, ports=(9,))
        with pytest.raises(ValueError, match="out of range"):
            chaos_schedule(cfg, make_fabric(4))


class TestChaosSchedule:
    def test_deterministic_by_seed(self):
        cfg = ChaosConfig(mtbf=2.0, mttr=1.0, horizon=30.0, seed=42)
        a = chaos_schedule(cfg, make_fabric())
        b = chaos_schedule(cfg, make_fabric())
        assert [(e.time, e.port, e.egress) for e in a.events] == [
            (e.time, e.port, e.egress) for e in b.events
        ]
        c = chaos_schedule(
            ChaosConfig(mtbf=2.0, mttr=1.0, horizon=30.0, seed=43),
            make_fabric(),
        )
        assert [(e.time, e.port) for e in a.events] != [
            (e.time, e.port) for e in c.events
        ]

    def test_every_failure_is_paired_with_repair(self):
        fab = make_fabric()
        dyn = chaos_schedule(
            ChaosConfig(mtbf=1.0, mttr=2.0, horizon=40.0, seed=7), fab
        )
        failures = [e for e in dyn.events if e.is_failure]
        repairs = [e for e in dyn.events if not e.is_failure]
        assert failures and len(failures) == len(repairs)
        # Repairs restore the original rates of their port.
        for r in repairs:
            assert r.egress == pytest.approx(float(fab.egress_rates[r.port]))
        # No port fails again while it is still down.
        down_until = {}
        for e in sorted(dyn.events, key=lambda e: e.time):
            if e.is_failure:
                assert down_until.get(e.port, 0.0) <= e.time
            else:
                down_until[e.port] = e.time

    def test_min_alive_is_respected(self):
        fab = make_fabric(3)
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.2, mttr=50.0, horizon=30.0, seed=1,
                        min_alive=2),
            fab,
        )
        # Replay the schedule counting concurrent downtime.
        down = []
        for e in sorted(dyn.events, key=lambda t: t.time):
            if e.is_failure:
                down = [(p, r) for p, r in down if r > e.time]
                down.append((e.port, np.inf))
                assert 3 - len(down) >= 2
            else:
                down = [
                    (p, e.time if p == e.port else r) for p, r in down
                ]

    def test_min_alive_rejects_tiny_fabric(self):
        with pytest.raises(ValueError, match="min_alive"):
            chaos_schedule(
                ChaosConfig(mtbf=1.0, mttr=1.0, horizon=5.0, min_alive=2),
                make_fabric(2),
            )

    def test_no_failures_after_horizon(self):
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.5, mttr=0.5, horizon=10.0, seed=3),
            make_fabric(),
        )
        assert all(
            e.time < 10.0 for e in dyn.events if e.is_failure
        )


class TestChaosSimulation:
    @pytest.mark.parametrize("policy", ["retry", "replan"])
    def test_runs_complete_under_chaos(self, policy):
        fab = make_fabric(6)
        rng = np.random.default_rng(0)
        coflows = []
        for j in range(4):
            flows = [
                Flow(s, d, float(rng.uniform(1, 5)))
                for s in range(6)
                for d in range(6)
                if s != d and rng.random() < 0.3
            ]
            if flows:
                coflows.append(
                    Coflow(flows, coflow_id=j, arrival_time=0.5 * j)
                )
        dyn = chaos_schedule(
            ChaosConfig(mtbf=3.0, mttr=2.0, horizon=20.0, seed=11), fab
        )
        res = CoflowSimulator(
            fab, make_scheduler("sebf"), dynamics=dyn, recovery=policy
        ).run(coflows)
        # Chaos repairs every failure, so nothing may be lost forever.
        assert set(res.ccts) == {c.coflow_id for c in coflows}
        assert not res.failed_coflows

    def test_same_seed_same_result(self):
        fab = make_fabric(5)
        cf = Coflow([Flow(s, 4, 6.0) for s in range(4)])
        mk = lambda: chaos_schedule(
            ChaosConfig(mtbf=2.0, mttr=3.0, horizon=15.0, seed=5), fab
        )
        r1 = CoflowSimulator(
            fab, make_scheduler("sebf"), dynamics=mk(), recovery="replan"
        ).run([cf])
        r2 = CoflowSimulator(
            fab, make_scheduler("sebf"), dynamics=mk(), recovery="replan"
        ).run([cf])
        assert r1.ccts[0] == pytest.approx(r2.ccts[0])
        assert [r.kind for r in r1.failures] == [r.kind for r in r2.failures]


class TestChaosScheduleEdgeCases:
    """Regression tests for degenerate configs and fabric states."""

    def test_zero_mtbf_and_zero_mttr_are_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            ChaosConfig(mtbf=0.0, mttr=1.0, horizon=5.0)
        with pytest.raises(ValueError, match="strictly positive"):
            ChaosConfig(mtbf=1.0, mttr=0.0, horizon=5.0)

    def test_dead_port_in_fabric_does_not_crash(self):
        # Regression: a zero-rate port used to reach RateEvent.recovery,
        # which rejects restoring a rate of zero.
        fab = make_fabric(6)
        fab.egress_rates[2] = 0.0
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.3, mttr=0.5, horizon=30.0, seed=1), fab
        )
        assert len(dyn.events) > 0
        assert all(e.port != 2 for e in dyn.events)

    def test_half_dead_port_is_also_ineligible(self):
        fab = make_fabric(6)
        fab.ingress_rates[4] = 0.0  # sender alive, receiver dead
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.3, mttr=0.5, horizon=30.0, seed=2), fab
        )
        assert all(e.port != 4 for e in dyn.events)

    def test_all_requested_ports_dead_is_a_clean_error(self):
        fab = make_fabric(4)
        fab.egress_rates[1] = 0.0
        with pytest.raises(ValueError, match="no chaos-eligible ports"):
            chaos_schedule(
                ChaosConfig(mtbf=1.0, mttr=1.0, horizon=5.0, ports=(1,)), fab
            )

    @pytest.mark.parametrize("seed", range(8))
    def test_failure_windows_never_overlap_per_port(self, seed):
        # down_until must prevent a port from failing while already down.
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.2, mttr=2.0, horizon=20.0, seed=seed),
            make_fabric(4),
        )
        windows: dict[int, list[tuple[float, float]]] = {}
        it = iter(dyn_pairs(dyn))
        for fail_t, repair_t, port in it:
            for lo, hi in windows.get(port, []):
                assert repair_t <= lo or fail_t >= hi, (
                    f"port {port} failed at {fail_t} inside [{lo}, {hi})"
                )
            windows.setdefault(port, []).append((fail_t, repair_t))

    @pytest.mark.parametrize("seed", range(8))
    def test_every_repair_strictly_follows_its_failure(self, seed):
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.5, mttr=1.0, horizon=15.0, seed=seed),
            make_fabric(5),
        )
        for fail_t, repair_t, _ in dyn_pairs(dyn):
            assert repair_t > fail_t

    def test_repairs_may_land_after_horizon_failures_never(self):
        horizon = 4.0
        dyn = chaos_schedule(
            ChaosConfig(mtbf=0.4, mttr=8.0, horizon=horizon, seed=9),
            make_fabric(6),
        )
        fails = [e for e in dyn.events if e.is_failure]
        repairs = [e for e in dyn.events if not e.is_failure]
        assert fails, "this seed/config should inject failures"
        assert all(e.time < horizon for e in fails)
        assert any(e.time >= horizon for e in repairs), (
            "an 8s MTTR against a 4s horizon should push repairs past it"
        )

    def test_schedule_extending_past_sim_end_is_harmless(self):
        # A schedule whose events outlive the workload must not wedge or
        # crash the simulator; leftover events simply stay pending.
        fab = make_fabric(4)
        cf = Coflow([Flow(0, 1, 0.5)])
        dyn = chaos_schedule(
            ChaosConfig(
                mtbf=5.0, mttr=5.0, horizon=500.0, seed=0, ports=(2, 3)
            ),
            fab,
        )
        assert len(dyn.events) > 4
        res = CoflowSimulator(
            fab, make_scheduler("sebf"), dynamics=dyn, recovery="retry"
        ).run([cf])
        assert not res.failed_coflows
        assert res.makespan < 500.0


def dyn_pairs(dyn):
    """Yield (failure_time, repair_time, port) for a chaos schedule.

    chaos_schedule appends failure and repair back to back, so pairs are
    recovered from the *generation* order, which FabricDynamics preserves
    inside its stable sort.
    """
    by_port: dict[int, list] = {}
    for e in sorted(dyn.events, key=lambda e: (e.time, e.is_failure)):
        by_port.setdefault(e.port, []).append(e)
    for port, events in by_port.items():
        fails = [e.time for e in events if e.is_failure]
        repairs = [e.time for e in events if not e.is_failure]
        assert len(fails) == len(repairs)
        for f, r in zip(sorted(fails), sorted(repairs)):
            yield f, r, port
