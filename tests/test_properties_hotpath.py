"""Property-based tests (hypothesis) pinning the hot-path rewrite.

The vectorized epoch loop (``incremental=True``) must be a pure
performance change: across random fabrics, workloads, noise seeds and
chaos schedules it has to produce the *bit-identical*
``SimulationResult`` of the reference path -- same CCT floats, same
epoch count, same failure log -- and the rewritten scheduler kernels
must return the exact floats of the reference implementations for any
input shape (full set, subsets above and below the scalar threshold,
weighted fills, blocked MADD ports).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.noise import NoisyEstimates
from repro.network import CoflowSimulator, Fabric
from repro.network.dynamics import FabricDynamics, RateEvent
from repro.network.flow import Coflow, Flow
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import (
    madd_rates_fast,
    madd_rates_reference,
    maxmin_fill_fast,
    maxmin_fill_reference,
)

SCHEDULERS = (
    "sebf", "dclas", "fair", "wss", "fifo", "scf", "ncf", "wcct5", "lpcct",
)


@st.composite
def workloads(draw):
    """A small random fabric + coflow set with staggered arrivals."""
    n_ports = draw(st.integers(3, 6))
    n_coflows = draw(st.integers(2, 8))
    coflows = []
    for cid in range(n_coflows):
        width = draw(st.integers(1, 4))
        flows = []
        for _ in range(width):
            src = draw(st.integers(0, n_ports - 1))
            dst = draw(st.integers(0, n_ports - 2))
            if dst >= src:
                dst += 1
            vol = draw(
                st.floats(0.01, 20.0, allow_nan=False, allow_infinity=False)
            )
            flows.append(Flow(src, dst, vol))
        arrival = draw(st.floats(0.0, 10.0, allow_nan=False))
        coflows.append(
            Coflow(flows=flows, arrival_time=arrival, coflow_id=cid)
        )
    return n_ports, coflows


def _fingerprint(result):
    return (
        tuple(sorted(result.ccts.items())),
        tuple(sorted(result.completion_times.items())),
        result.n_epochs,
        tuple(sorted(result.failed_coflows)),
        tuple((r.kind, r.time, r.flows) for r in result.failures),
    )


def _run(n_ports, coflows, scheduler, *, incremental, dynamics=None,
         recovery=None, noise=None, batch_events=True, source=None):
    sim = CoflowSimulator(
        Fabric(n_ports=n_ports, rate=1.0),
        make_scheduler(scheduler),
        dynamics=dynamics,
        recovery=recovery,
        estimate_noise=noise,
        incremental=incremental,
        batch_events=batch_events,
    )
    return sim.run(
        [Coflow(list(c.flows), c.arrival_time, c.coflow_id)
         for c in coflows],
        source=source,
    )


class TestIncrementalBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(workloads(), st.sampled_from(SCHEDULERS))
    def test_plain(self, wl, scheduler):
        n_ports, coflows = wl
        ref = _run(n_ports, coflows, scheduler, incremental=False)
        inc = _run(n_ports, coflows, scheduler, incremental=True)
        assert _fingerprint(ref) == _fingerprint(inc)

    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        st.sampled_from(("sebf", "dclas", "fair")),
        st.integers(0, 2 ** 16),
        st.floats(0.05, 0.6),
        st.floats(0.0, 0.3),
    )
    def test_noisy_estimates(self, wl, scheduler, seed, sigma, censor):
        n_ports, coflows = wl
        noise = dict(sigma=sigma, censor_fraction=censor, seed=seed)
        ref = _run(
            n_ports, coflows, scheduler,
            incremental=False, noise=NoisyEstimates(**noise),
        )
        inc = _run(
            n_ports, coflows, scheduler,
            incremental=True, noise=NoisyEstimates(**noise),
        )
        assert _fingerprint(ref) == _fingerprint(inc)

    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        st.sampled_from(("sebf", "fair", "wss")),
        st.integers(0, 2),
        st.floats(0.5, 20.0),
        st.floats(1.0, 30.0),
        st.sampled_from(("retry", "replan", "abort")),
    )
    def test_chaos_schedule(
        self, wl, scheduler, port, fail_at, downtime, policy
    ):
        n_ports, coflows = wl
        events = [
            RateEvent.failure(fail_at, port),
            RateEvent.recovery(
                fail_at + downtime, port, egress=1.0, ingress=1.0
            ),
        ]
        ref = _run(
            n_ports, coflows, scheduler, incremental=False,
            dynamics=FabricDynamics(list(events)), recovery=policy,
        )
        inc = _run(
            n_ports, coflows, scheduler, incremental=True,
            dynamics=FabricDynamics(list(events)), recovery=policy,
        )
        assert _fingerprint(ref) == _fingerprint(inc)


class _ScriptedSource:
    """Deterministic ``ArrivalSource``: a fixed (release, coflow) script.

    Release times may lag the coflows' ``arrival_time`` (a deferred
    admission), which is the service-mode shape that produces repeated
    source-poll epochs on an unchanged fleet -- the exact epochs the
    event-horizon cache elides.
    """

    def __init__(self, entries):
        self.entries = sorted(entries, key=lambda e: e[0])
        self.i = 0

    def next_time(self, now):
        for j in range(self.i, len(self.entries)):
            t = self.entries[j][0]
            if t > now + 1e-15:
                return t
        return None

    def take(self, now, slack):
        out = []
        while (
            self.i < len(self.entries)
            and self.entries[self.i][0] <= now + slack
        ):
            out.append(self.entries[self.i][1])
            self.i += 1
        return out


@st.composite
def sourced_workloads(draw):
    """A workload split between up-front coflows and a release script."""
    n_ports, coflows = draw(workloads())
    initial, scripted = [], []
    for c in coflows:
        if draw(st.booleans()):
            # Released at or after its arrival time: the gap is the
            # admission deferral the CCT keeps charging.
            delay = draw(st.floats(0.0, 5.0, allow_nan=False))
            scripted.append((c.arrival_time + delay, c))
        else:
            initial.append(c)
    return n_ports, initial, scripted


class TestBatchEventsBitIdentity:
    """``batch_events=True`` must be a pure performance change.

    The event-horizon path reuses rate allocations across epochs where
    the fleet, fabric and validity horizon provably allow it; these
    properties pin that the reuse never changes a single output float,
    epoch count or failure record relative to ``batch_events=False``.
    """

    @settings(max_examples=30, deadline=None)
    @given(workloads(), st.sampled_from(SCHEDULERS))
    def test_plain(self, wl, scheduler):
        n_ports, coflows = wl
        off = _run(n_ports, coflows, scheduler,
                   incremental=True, batch_events=False)
        on = _run(n_ports, coflows, scheduler,
                  incremental=True, batch_events=True)
        assert _fingerprint(off) == _fingerprint(on)

    @settings(max_examples=20, deadline=None)
    @given(
        workloads(),
        st.sampled_from(("sebf", "fair", "wss")),
        st.integers(0, 2),
        st.floats(0.5, 20.0),
        st.floats(1.0, 30.0),
        st.sampled_from(("retry", "replan", "abort")),
    )
    def test_chaos_schedule(
        self, wl, scheduler, port, fail_at, downtime, policy
    ):
        n_ports, coflows = wl
        events = [
            RateEvent.failure(fail_at, port),
            RateEvent.recovery(
                fail_at + downtime, port, egress=1.0, ingress=1.0
            ),
        ]
        off = _run(
            n_ports, coflows, scheduler,
            incremental=True, batch_events=False,
            dynamics=FabricDynamics(list(events)), recovery=policy,
        )
        on = _run(
            n_ports, coflows, scheduler,
            incremental=True, batch_events=True,
            dynamics=FabricDynamics(list(events)), recovery=policy,
        )
        assert _fingerprint(off) == _fingerprint(on)

    @settings(max_examples=30, deadline=None)
    @given(sourced_workloads(), st.sampled_from(SCHEDULERS))
    def test_scripted_source(self, wl, scheduler):
        n_ports, initial, scripted = wl
        runs = []
        for batch in (False, True):
            src = _ScriptedSource(
                [
                    (t, Coflow(list(c.flows), c.arrival_time, c.coflow_id))
                    for t, c in scripted
                ]
            )
            runs.append(
                _run(n_ports, initial, scheduler,
                     incremental=True, batch_events=batch, source=src)
            )
        assert _fingerprint(runs[0]) == _fingerprint(runs[1])

    @settings(max_examples=15, deadline=None)
    @given(
        sourced_workloads(),
        st.sampled_from(("sebf", "dclas", "fair")),
        st.integers(0, 2),
        st.floats(0.5, 20.0),
    )
    def test_scripted_source_with_chaos(self, wl, scheduler, port, fail_at):
        n_ports, initial, scripted = wl
        events = [
            RateEvent.failure(fail_at, port),
            RateEvent.recovery(
                fail_at + 5.0, port, egress=1.0, ingress=1.0
            ),
        ]
        runs = []
        for batch in (False, True):
            src = _ScriptedSource(
                [
                    (t, Coflow(list(c.flows), c.arrival_time, c.coflow_id))
                    for t, c in scripted
                ]
            )
            runs.append(
                _run(
                    n_ports, initial, scheduler,
                    incremental=True, batch_events=batch, source=src,
                    dynamics=FabricDynamics(list(events)),
                    recovery="retry",
                )
            )
        assert _fingerprint(runs[0]) == _fingerprint(runs[1])


@st.composite
def kernel_cases(draw):
    n_ports = draw(st.integers(2, 8))
    n_flows = draw(st.integers(1, 50))
    rng = np.random.default_rng(draw(st.integers(0, 2 ** 16)))
    srcs = rng.integers(0, n_ports, size=n_flows)
    dsts = rng.integers(0, n_ports, size=n_flows)
    remaining = rng.uniform(1e-3, 10.0, size=n_flows)
    res_out = rng.uniform(0.0, 2.0, size=n_ports)
    res_in = rng.uniform(0.0, 2.0, size=n_ports)
    k = draw(st.integers(1, n_flows))
    subset = np.sort(rng.choice(n_flows, size=k, replace=False))
    return n_ports, srcs, dsts, remaining, res_out, res_in, subset


class TestKernelProperties:
    @settings(max_examples=60, deadline=None)
    @given(kernel_cases(), st.booleans())
    def test_maxmin_subset_exact(self, case, use_subset):
        n_ports, srcs, dsts, _, res_out, res_in, subset = case
        sub = subset if use_subset else None
        ref = maxmin_fill_reference(
            srcs, dsts, res_out.copy(), res_in.copy(), subset=sub
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        fast = maxmin_fill_fast(
            srcs, dsts + n_ports, res, subset=sub, zero_rates=True
        )
        assert (ref == fast).all()

    @settings(max_examples=40, deadline=None)
    @given(kernel_cases(), st.integers(0, 2 ** 16))
    def test_maxmin_weighted_exact(self, case, wseed):
        n_ports, srcs, dsts, _, res_out, res_in, subset = case
        weights = np.random.default_rng(wseed).uniform(
            0.1, 5.0, size=srcs.shape[0]
        )
        ref = maxmin_fill_reference(
            srcs, dsts, res_out.copy(), res_in.copy(),
            subset=subset, weights=weights,
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        fast = maxmin_fill_fast(
            srcs, dsts + n_ports, res, subset=subset, weights=weights
        )
        assert (ref == fast).all()

    @settings(max_examples=60, deadline=None)
    @given(kernel_cases())
    def test_madd_exact(self, case):
        n_ports, srcs, dsts, remaining, res_out, res_in, subset = case
        rates_ref = np.zeros(srcs.shape[0])
        ok_ref = madd_rates_reference(
            srcs, dsts, remaining, res_out.copy(), res_in.copy(),
            subset, rates_ref,
        )
        res = np.concatenate((res_out.copy(), res_in.copy()))
        rates_fast = np.zeros(srcs.shape[0])
        ok_fast = madd_rates_fast(
            srcs, dsts + n_ports, remaining, res, subset, rates_fast
        )
        assert ok_ref == ok_fast
        assert (rates_ref == rates_fast).all()
