"""Unit tests for DistributedRelation."""

import numpy as np
import pytest

from repro.join.relation import DistributedRelation


class TestConstruction:
    def test_basic(self):
        rel = DistributedRelation(
            shards=[np.array([1, 2]), np.array([3])], payload_bytes=10.0
        )
        assert rel.n_nodes == 2
        assert rel.total_tuples == 3
        assert rel.total_bytes == 30.0

    def test_empty_shard_list_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            DistributedRelation(shards=[])

    def test_nonpositive_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            DistributedRelation(shards=[np.array([1])], payload_bytes=0.0)

    def test_shards_cast_to_int64(self):
        rel = DistributedRelation(shards=[np.array([1.0, 2.0])])
        assert rel.shards[0].dtype == np.int64


class TestAccessors:
    def setup_method(self):
        self.rel = DistributedRelation(
            shards=[np.array([1, 1, 2]), np.array([2, 3]), np.array([], dtype=np.int64)]
        )

    def test_shard_tuples(self):
        np.testing.assert_array_equal(self.rel.shard_tuples(), [3, 2, 0])

    def test_all_keys_multiset(self):
        assert sorted(self.rel.all_keys().tolist()) == [1, 1, 2, 2, 3]

    def test_key_counts(self):
        assert self.rel.key_counts() == {1: 2, 2: 2, 3: 1}

    def test_only_keys(self):
        sub = self.rel.only_keys(np.array([1]))
        assert sub.total_tuples == 2
        assert sub.shards[1].size == 0

    def test_without_keys(self):
        sub = self.rel.without_keys(np.array([1]))
        assert sorted(sub.all_keys().tolist()) == [2, 2, 3]

    def test_partition_only_without_is_everything(self):
        keys = np.array([2])
        a = self.rel.only_keys(keys)
        b = self.rel.without_keys(keys)
        assert a.total_tuples + b.total_tuples == self.rel.total_tuples


class TestFromPlacement:
    def test_round_trip(self):
        keys = np.array([10, 20, 30, 40])
        nodes = np.array([2, 0, 2, 1])
        rel = DistributedRelation.from_placement(keys, nodes, 3)
        assert rel.shards[0].tolist() == [20]
        assert rel.shards[1].tolist() == [40]
        assert sorted(rel.shards[2].tolist()) == [10, 30]

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            DistributedRelation.from_placement(
                np.array([1, 2]), np.array([0]), 2
            )

    def test_node_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DistributedRelation.from_placement(
                np.array([1]), np.array([5]), 2
            )

    def test_empty_relation(self):
        rel = DistributedRelation.from_placement(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 3
        )
        assert rel.total_tuples == 0
        assert rel.n_nodes == 3

    def test_key_counts_preserved(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, 500)
        nodes = rng.integers(0, 4, 500)
        rel = DistributedRelation.from_placement(keys, nodes, 4)
        uniq, cnt = np.unique(keys, return_counts=True)
        assert rel.key_counts() == {int(k): int(c) for k, c in zip(uniq, cnt)}
