"""Unit tests for local join processing."""

import numpy as np

from repro.join.local import join_cardinality, local_hash_join


def naive_cardinality(left, right):
    return sum(int(l == r) for l in left for r in right)


class TestJoinCardinality:
    def test_simple(self):
        assert join_cardinality(np.array([1, 2, 3]), np.array([2, 2, 4])) == 2

    def test_multiplicities(self):
        left = np.array([5, 5, 5])
        right = np.array([5, 5])
        assert join_cardinality(left, right) == 6

    def test_disjoint(self):
        assert join_cardinality(np.array([1]), np.array([2])) == 0

    def test_empty_sides(self):
        assert join_cardinality(np.array([], dtype=np.int64), np.array([1])) == 0
        assert join_cardinality(np.array([1]), np.array([], dtype=np.int64)) == 0

    def test_matches_naive_on_random_input(self):
        rng = np.random.default_rng(4)
        for _ in range(10):
            left = rng.integers(0, 15, size=rng.integers(0, 40))
            right = rng.integers(0, 15, size=rng.integers(0, 40))
            assert join_cardinality(left, right) == naive_cardinality(left, right)

    def test_no_overflow_on_large_counts(self):
        left = np.full(100_000, 7)
        right = np.full(100_000, 7)
        assert join_cardinality(left, right) == 100_000 ** 2


class TestLocalHashJoin:
    def test_result_keys_with_multiplicity(self):
        out = local_hash_join(np.array([1, 1, 2]), np.array([1, 2, 2]))
        assert out.tolist() == [1, 1, 2, 2]

    def test_empty(self):
        assert local_hash_join(np.array([], dtype=np.int64), np.array([1])).size == 0

    def test_cardinality_consistent(self):
        rng = np.random.default_rng(9)
        left = rng.integers(0, 10, 30)
        right = rng.integers(0, 10, 30)
        assert local_hash_join(left, right).size == join_cardinality(left, right)
