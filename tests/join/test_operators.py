"""Integration tests: distributed operators are correct under every strategy."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.join.operators import (
    DistributedAggregation,
    DistributedJoin,
    DuplicateElimination,
)
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


@pytest.fixture(scope="module")
def tpch_join():
    cfg = TPCHConfig(n_nodes=5, scale_factor=0.002, skew=0.25, seed=3)
    customer, orders = generate_tpch_relations(cfg)
    return DistributedJoin(customer, orders, skew_factor=50.0)


class TestDistributedJoin:
    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_cardinality_matches_centralized(self, tpch_join, strategy):
        plan = CCF().plan(tpch_join, strategy)
        result = tpch_join.execute(plan)
        assert result.cardinality == tpch_join.expected_cardinality()

    def test_cardinality_correct_without_skew_handling(self, tpch_join):
        plan = CCF(skew_handling=False).plan(tpch_join, "ccf")
        result = tpch_join.execute(plan, skew_handling=False)
        assert result.cardinality == tpch_join.expected_cardinality()

    def test_skew_detected(self, tpch_join):
        assert tpch_join.skewed_keys().tolist() == [1]

    def test_realized_traffic_matches_plan(self, tpch_join):
        # The model's predicted traffic must equal what the shuffle moved.
        for strategy in ("hash", "mini", "ccf"):
            plan = CCF().plan(tpch_join, strategy)
            result = tpch_join.execute(plan)
            assert result.realized_traffic == pytest.approx(plan.traffic)

    def test_realized_volume_matches_model(self, tpch_join):
        plan = CCF().plan(tpch_join, "ccf")
        result = tpch_join.execute(plan)
        predicted = plan.model.volume_matrix(plan.dest)
        off_pred = predicted - np.diag(np.diagonal(predicted))
        off_real = result.realized_volume - np.diag(
            np.diagonal(result.realized_volume)
        )
        np.testing.assert_allclose(off_real, off_pred)

    def test_ccf_plan_not_slower(self, tpch_join):
        cmp = CCF().compare(tpch_join)
        assert cmp.cct("ccf") <= cmp.cct("hash") + 1e-9
        assert cmp.cct("ccf") <= cmp.cct("mini") + 1e-9

    def test_node_count_mismatch_rejected(self):
        a = DistributedRelation(shards=[np.array([1])])
        b = DistributedRelation(shards=[np.array([1]), np.array([2])])
        with pytest.raises(ValueError, match="same nodes"):
            DistributedJoin(a, b)

    def test_default_partitioner_is_15n(self):
        rel = DistributedRelation(shards=[np.array([1]), np.array([2])])
        join = DistributedJoin(rel, rel)
        assert join.partitioner.p == 30


class TestDistributedAggregation:
    @pytest.fixture(scope="class")
    def relation(self):
        rng = np.random.default_rng(8)
        keys = rng.integers(0, 30, 400)
        keys[:100] = 7  # hot key
        nodes = rng.integers(0, 4, 400)
        return DistributedRelation.from_placement(keys, nodes, 4)

    @pytest.mark.parametrize("pre_aggregate", [False, True])
    @pytest.mark.parametrize("strategy", ["hash", "ccf"])
    def test_groups_match_centralized(self, relation, pre_aggregate, strategy):
        agg = DistributedAggregation(
            relation, pre_aggregate=pre_aggregate, partitioner=HashPartitioner(12)
        )
        plan = CCF().plan(agg, strategy)
        result = agg.execute(plan)
        assert result.groups == agg.expected_groups()

    def test_pre_aggregation_reduces_traffic(self, relation):
        part = HashPartitioner(12)
        plain = DistributedAggregation(relation, partitioner=part)
        combined = DistributedAggregation(
            relation, pre_aggregate=True, partitioner=part
        )
        ccf = CCF()
        t_plain = plain.execute(ccf.plan(plain, "hash")).realized_traffic
        t_comb = combined.execute(ccf.plan(combined, "hash")).realized_traffic
        assert t_comb < t_plain

    def test_skew_handling_toggles_pre_aggregation_in_model(self, relation):
        agg = DistributedAggregation(relation, partitioner=HashPartitioner(12))
        raw = agg.shuffle_model(skew_handling=False)
        handled = agg.shuffle_model(skew_handling=True)
        assert handled.h.sum() < raw.h.sum()


class TestDuplicateElimination:
    @pytest.fixture(scope="class")
    def relation(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(0, 25, 300)
        nodes = rng.integers(0, 3, 300)
        return DistributedRelation.from_placement(keys, nodes, 3)

    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_distinct_count_matches(self, relation, strategy):
        op = DuplicateElimination(relation, partitioner=HashPartitioner(9))
        plan = CCF().plan(op, strategy)
        result = op.execute(plan)
        assert len(result.groups) == op.expected_distinct()

    def test_local_dedup_bounds_traffic(self, relation):
        op = DuplicateElimination(relation, partitioner=HashPartitioner(9))
        plan = CCF().plan(op, "hash")
        result = op.execute(plan)
        # At most (#distinct keys per node summed) tuples cross the network.
        max_tuples = sum(np.unique(s).size for s in relation.shards)
        assert result.realized_traffic <= max_tuples * relation.payload_bytes
