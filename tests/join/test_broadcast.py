"""Tests for broadcast joins and the compiler's cost-based choice."""

import numpy as np
import pytest

from repro.analytics.compile import QueryExecutor
from repro.analytics.logical import EquiJoin, Scan
from repro.analytics.queries import build_tpch_catalog
from repro.core.framework import CCF
from repro.join.broadcast import BroadcastJoin
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.workloads.tpch import TPCHConfig


def tiny_and_huge(n_nodes=5, seed=0):
    rng = np.random.default_rng(seed)
    small = DistributedRelation.from_placement(
        rng.integers(0, 20, 10), rng.integers(0, n_nodes, 10), n_nodes,
        payload_bytes=10.0,
    )
    big = DistributedRelation.from_placement(
        rng.integers(0, 20, 2000), rng.integers(0, n_nodes, 2000), n_nodes,
        payload_bytes=10.0,
    )
    return small, big


class TestBroadcastJoin:
    def test_cardinality_matches_centralized(self):
        small, big = tiny_and_huge()
        bj = BroadcastJoin(small, big, rate=1.0)
        result = bj.execute()
        assert result.cardinality == bj.expected_cardinality()

    def test_traffic_is_n_minus_1_copies(self):
        small, big = tiny_and_huge()
        bj = BroadcastJoin(small, big, rate=1.0)
        assert bj.broadcast_traffic() == pytest.approx(4 * small.total_bytes)
        assert bj.execute().realized_traffic == bj.broadcast_traffic()

    def test_shuffle_model_has_no_partitions(self):
        small, big = tiny_and_huge()
        model = BroadcastJoin(small, big, rate=1.0).shuffle_model()
        assert model.p == 0
        assert model.v0.sum() == pytest.approx(4 * small.total_bytes)

    def test_beats_repartition_for_tiny_small_side(self):
        small, big = tiny_and_huge()
        bj = BroadcastJoin(small, big, rate=1.0)
        join = DistributedJoin(
            small, big, partitioner=HashPartitioner(25), skew_factor=1e9,
            rate=1.0,
        )
        repart = CCF(skew_handling=False).plan(join, "ccf")
        assert bj.plan().cct < repart.cct
        assert bj.broadcast_traffic() < repart.traffic

    def test_materialized_result(self):
        small, big = tiny_and_huge()
        bj = BroadcastJoin(small, big, rate=1.0)
        result = bj.execute(materialize=True)
        assert result.result is not None
        assert result.result.total_tuples == result.cardinality
        # The result lives where the big side lives: its per-node counts
        # match the per-node cardinalities.
        np.testing.assert_array_equal(
            result.result.shard_tuples(), result.per_node_cardinality
        )

    def test_node_mismatch_rejected(self):
        a = DistributedRelation(shards=[np.array([1])])
        b = DistributedRelation(shards=[np.array([1]), np.array([2])])
        with pytest.raises(ValueError, match="same nodes"):
            BroadcastJoin(a, b)


class TestCompilerCostBasedChoice:
    @pytest.fixture(scope="class")
    def catalog(self):
        # Broadcast of the small side loses once n * |small| exceeds the
        # repartition share: with ORDERS = 10 x CUSTOMER the crossover is
        # around n = 11, so at 16 nodes CUSTOMER ⋈ ORDERS repartitions
        # while a truly tiny dimension table still broadcasts.
        n = 16
        cat = build_tpch_catalog(
            TPCHConfig(n_nodes=n, scale_factor=0.002, skew=0.2, seed=2)
        )
        rng = np.random.default_rng(1)
        tiny = DistributedRelation.from_placement(
            np.arange(1, 6), rng.integers(0, n, 5), n, payload_bytes=1000.0
        )
        cat.register("tiny_dim", tiny)
        return cat

    def test_broadcast_chosen_for_tiny_dimension(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(EquiJoin(Scan("tiny_dim"), Scan("orders")))
        assert [s.name for s in result.stages] == ["broadcast-join"]
        # Correctness unchanged.
        from repro.join.local import join_cardinality

        expected = join_cardinality(
            catalog.relation("tiny_dim").all_keys(),
            catalog.relation("orders").all_keys(),
        )
        assert result.rows == expected

    def test_repartition_kept_when_sides_comparable(self, catalog):
        ex = QueryExecutor(catalog, skew_factor=50.0)
        result = ex.execute(EquiJoin(Scan("customer"), Scan("orders")))
        assert [s.name for s in result.stages] == ["join"]

    def test_broadcast_can_be_disabled(self, catalog):
        ex = QueryExecutor(
            catalog, skew_factor=50.0, enable_broadcast=False
        )
        result = ex.execute(EquiJoin(Scan("tiny_dim"), Scan("orders")))
        assert [s.name for s in result.stages] == ["join"]
