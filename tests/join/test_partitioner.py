"""Unit tests for the hash partitioner and chunk-matrix computation."""

import numpy as np
import pytest

from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation


class TestPartitionOf:
    def test_modulus(self):
        p = HashPartitioner(p=5)
        np.testing.assert_array_equal(
            p.partition_of(np.array([0, 1, 5, 7])), [0, 1, 0, 2]
        )

    def test_invalid_p(self):
        with pytest.raises(ValueError, match="positive"):
            HashPartitioner(p=0)


class TestChunkMatrix:
    def setup_method(self):
        self.rel = DistributedRelation(
            shards=[np.array([0, 1, 2, 3]), np.array([0, 0, 2])],
            payload_bytes=10.0,
        )
        self.part = HashPartitioner(p=2)

    def test_chunk_tuples(self):
        counts = self.part.chunk_tuples(self.rel)
        # Node 0: keys 0,2 -> part 0 (2 tuples); 1,3 -> part 1 (2).
        # Node 1: keys 0,0,2 -> part 0 (3).
        np.testing.assert_array_equal(counts, [[2, 2], [3, 0]])

    def test_chunk_matrix_scales_by_payload(self):
        h = self.part.chunk_matrix(self.rel)
        np.testing.assert_allclose(h, [[20.0, 20.0], [30.0, 0.0]])

    def test_chunk_matrix_sums_relations(self):
        other = DistributedRelation(
            shards=[np.array([1]), np.array([], dtype=np.int64)],
            payload_bytes=5.0,
        )
        h = self.part.chunk_matrix(self.rel, other)
        np.testing.assert_allclose(h, [[20.0, 25.0], [30.0, 0.0]])

    def test_total_bytes_conserved(self):
        h = self.part.chunk_matrix(self.rel)
        assert h.sum() == self.rel.total_bytes

    def test_mismatched_node_counts_rejected(self):
        other = DistributedRelation(shards=[np.array([1])])
        with pytest.raises(ValueError, match="node counts"):
            self.part.chunk_matrix(self.rel, other)

    def test_no_relations_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            self.part.chunk_matrix()

    def test_row_sums_match_shard_bytes(self):
        rng = np.random.default_rng(1)
        rel = DistributedRelation(
            shards=[rng.integers(0, 100, rng.integers(0, 50)) for _ in range(5)],
            payload_bytes=3.0,
        )
        h = HashPartitioner(p=7).chunk_matrix(rel)
        np.testing.assert_allclose(h.sum(axis=1), rel.shard_tuples() * 3.0)
