"""Tests for keyed relations and multi-key joins."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.join.multikey import (
    KeyedEquiJoin,
    KeyedRelation,
    execute_keyed_shuffle,
    local_keyed_join,
)
from repro.join.partitioner import HashPartitioner
from repro.workloads.tpch import TPCHConfig, generate_tpch_keyed


@pytest.fixture
def keyed():
    return KeyedRelation(
        columns={
            "a": [np.array([1, 2]), np.array([3])],
            "b": [np.array([10, 20]), np.array([30])],
        },
        payload_bytes=8.0,
    )


class TestKeyedRelation:
    def test_basic(self, keyed):
        assert keyed.n_nodes == 2
        assert keyed.total_tuples == 3
        assert keyed.total_bytes == 24.0
        assert set(keyed.column_names) == {"a", "b"}

    def test_parallel_columns_enforced(self):
        with pytest.raises(ValueError, match="lengths"):
            KeyedRelation(
                columns={"a": [np.array([1])], "b": [np.array([1, 2])]}
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            KeyedRelation(columns={})

    def test_project(self, keyed):
        rel = keyed.project("b")
        assert sorted(rel.all_keys().tolist()) == [10, 20, 30]
        with pytest.raises(ValueError, match="unknown column"):
            keyed.project("c")

    def test_select_filters_rows_consistently(self, keyed):
        out = keyed.select("a", lambda v: v % 2 == 1)
        assert sorted(out.columns["a"][0].tolist() + out.columns["a"][1].tolist()) == [1, 3]
        assert sorted(out.columns["b"][0].tolist() + out.columns["b"][1].tolist()) == [10, 30]

    def test_from_rows_round_trip(self):
        cols = {"x": np.array([5, 6, 7]), "y": np.array([50, 60, 70])}
        nodes = np.array([1, 0, 1])
        rel = KeyedRelation.from_rows(cols, nodes, 2)
        assert rel.columns["x"][0].tolist() == [6]
        assert rel.columns["y"][1].tolist() == [50, 70]

    def test_from_rows_nonparallel_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            KeyedRelation.from_rows(
                {"x": np.array([1, 2]), "y": np.array([1])},
                np.array([0, 0]),
                1,
            )


class TestLocalKeyedJoin:
    def test_columns_carried_through(self):
        left = {"k": np.array([1, 2, 2]), "lv": np.array([10, 20, 21])}
        right = {"k": np.array([2, 3]), "rv": np.array([200, 300])}
        out = local_keyed_join(left, right, on="k")
        assert sorted(out["k"].tolist()) == [2, 2]
        assert sorted(out["lv"].tolist()) == [20, 21]
        assert out["rv"].tolist() == [200, 200]

    def test_multiplicities(self):
        left = {"k": np.array([7, 7])}
        right = {"k": np.array([7, 7, 7])}
        out = local_keyed_join(left, right, on="k")
        assert out["k"].size == 6

    def test_empty_intersection(self):
        out = local_keyed_join(
            {"k": np.array([1])}, {"k": np.array([2])}, on="k"
        )
        assert out["k"].size == 0

    def test_collision_detected(self):
        left = {"k": np.array([1]), "v": np.array([1])}
        right = {"k": np.array([1]), "v": np.array([2])}
        with pytest.raises(ValueError, match="collision"):
            local_keyed_join(left, right, on="k")

    def test_prefixes_resolve_collisions(self):
        left = {"k": np.array([1]), "v": np.array([10])}
        right = {"k": np.array([1]), "v": np.array([20])}
        out = local_keyed_join(
            left, right, on="k", left_prefix="l_", right_prefix="r_"
        )
        assert out["l_v"].tolist() == [10]
        assert out["r_v"].tolist() == [20]


class TestKeyedShuffle:
    def test_rows_stay_parallel(self, keyed):
        part = HashPartitioner(p=4)
        dest = np.array([0, 1, 0, 1], dtype=np.int64)
        out, vol = execute_keyed_shuffle(keyed, part, dest, on="a")
        # Pairing between a and b preserved: b == 10 * a everywhere.
        for node in range(2):
            rows = out.node_rows(node)
            np.testing.assert_array_equal(rows["b"], rows["a"] * 10)
        assert vol.sum() == keyed.total_bytes

    def test_colocation_by_join_column(self, keyed):
        part = HashPartitioner(p=4)
        dest = np.array([1, 1, 1, 1], dtype=np.int64)
        out, _ = execute_keyed_shuffle(keyed, part, dest, on="a")
        assert out.node_rows(0)["a"].size == 0
        assert out.node_rows(1)["a"].size == 3


class TestKeyedEquiJoin:
    @pytest.fixture(scope="class")
    def schema(self):
        return generate_tpch_keyed(
            TPCHConfig(n_nodes=4, scale_factor=0.002, skew=0.2, seed=8)
        )

    def expected_three_way(self, schema):
        """Centralized |customer ⋈ orders ⋈ lineitem| via key counting."""
        cust = np.concatenate(schema["customer"].columns["custkey"])
        ord_ck = np.concatenate(schema["orders"].columns["custkey"])
        ord_ok = np.concatenate(schema["orders"].columns["orderkey"])
        li_ok = np.concatenate(schema["lineitem"].columns["orderkey"])
        cust_set = set(cust.tolist())
        li_keys, li_counts = np.unique(li_ok, return_counts=True)
        li_map = dict(zip(li_keys.tolist(), li_counts.tolist()))
        total = 0
        for ck, ok in zip(ord_ck.tolist(), ord_ok.tolist()):
            if ck in cust_set:
                total += li_map.get(ok, 0)
        return total

    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_three_way_pipeline_correct(self, schema, strategy):
        ccf = CCF(skew_handling=False)
        stage1 = KeyedEquiJoin(
            schema["customer"], schema["orders"], on="custkey"
        )
        plan1 = ccf.plan(stage1, strategy)
        mid = stage1.execute(plan1)

        stage2 = KeyedEquiJoin(mid.result, schema["lineitem"], on="orderkey")
        plan2 = ccf.plan(stage2, strategy)
        final = stage2.execute(plan2)

        assert final.cardinality == self.expected_three_way(schema)
        assert final.realized_traffic > 0

    def test_intermediate_carries_orderkey(self, schema):
        ccf = CCF(skew_handling=False)
        stage1 = KeyedEquiJoin(
            schema["customer"], schema["orders"], on="custkey"
        )
        mid = stage1.execute(ccf.plan(stage1, "ccf"))
        assert "orderkey" in mid.result.column_names
        assert "custkey" in mid.result.column_names

    def test_ccf_not_slower_for_each_stage(self, schema):
        ccf = CCF(skew_handling=False)
        stage = KeyedEquiJoin(
            schema["customer"], schema["orders"], on="custkey"
        )
        t = {
            s: ccf.plan(stage, s).cct for s in ("hash", "mini", "ccf")
        }
        assert t["ccf"] <= t["hash"] + 1e-9
        assert t["ccf"] <= t["mini"] + 1e-9

    def test_missing_join_column_rejected(self, schema):
        with pytest.raises(ValueError, match="lacks join column"):
            KeyedEquiJoin(
                schema["customer"], schema["lineitem"], on="custkey"
            )

    def test_node_mismatch_rejected(self, schema):
        other = KeyedRelation(columns={"custkey": [np.array([1])]})
        with pytest.raises(ValueError, match="same nodes"):
            KeyedEquiJoin(schema["customer"], other, on="custkey")
