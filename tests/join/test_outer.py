"""Tests for distributed outer joins and semi-join reduction."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.join.outer import DistributedOuterJoin, semijoin_reduction
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
def naive_left_outer(left_keys, right_keys):
    """Reference: row count of LEFT OUTER JOIN."""
    total = 0
    right = list(right_keys)
    for lk in left_keys:
        matches = sum(1 for rk in right if rk == lk)
        total += matches if matches else 1
    return total


class TestDistributedOuterJoin:
    @pytest.fixture(scope="class")
    def join(self):
        # Left keys span 1..300 but right FKs only hit a third of them
        # (plus a hot key), so plenty of left rows are unmatched.
        rng = np.random.default_rng(7)
        left = DistributedRelation.from_placement(
            np.arange(1, 301), rng.integers(0, 4, 300), 4,
            payload_bytes=100.0,
        )
        right_keys = rng.integers(1, 101, size=600)
        right_keys[:150] = 1  # skew
        right = DistributedRelation.from_placement(
            right_keys, rng.integers(0, 4, 600), 4, payload_bytes=100.0
        )
        return DistributedOuterJoin(
            left, right, partitioner=HashPartitioner(60), skew_factor=20.0
        )

    def test_expected_cardinality_matches_naive_small(self):
        left = DistributedRelation(shards=[np.array([1, 2, 2, 5])])
        right = DistributedRelation(shards=[np.array([2, 2, 7])])
        oj = DistributedOuterJoin(left, right, partitioner=HashPartitioner(4))
        assert oj.expected_cardinality() == naive_left_outer(
            [1, 2, 2, 5], [2, 2, 7]
        )

    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_execution_matches_centralized(self, join, strategy):
        plan = CCF().plan(join, strategy)
        result = join.execute_outer(plan)
        assert result.cardinality == join.expected_cardinality()

    def test_unmatched_accounting(self, join):
        plan = CCF().plan(join, "ccf")
        result = join.execute_outer(plan)
        assert result.cardinality == result.matched + result.unmatched_left
        assert result.unmatched_left > 0  # some customers have no orders

    def test_same_shuffle_model_as_inner(self, join):
        inner_model = super(DistributedOuterJoin, join).shuffle_model(
            skew_handling=True
        )
        outer_model = join.shuffle_model(skew_handling=True)
        np.testing.assert_allclose(inner_model.h, outer_model.h)


class TestSemiJoinReduction:
    def test_filters_non_matching_rows(self):
        small = DistributedRelation(
            shards=[np.array([1, 2]), np.array([3])], payload_bytes=8.0
        )
        big = DistributedRelation(
            shards=[np.array([1, 1, 9, 9]), np.array([2, 8])],
            payload_bytes=100.0,
        )
        red = semijoin_reduction(small, big)
        assert sorted(red.reduced.all_keys().tolist()) == [1, 1, 2]
        assert red.bytes_saved == pytest.approx(3 * 100.0)

    def test_broadcast_cost_accounting(self):
        small = DistributedRelation(
            shards=[np.array([1, 1, 2]), np.array([], np.int64)],
        )
        big = DistributedRelation(
            shards=[np.array([5]), np.array([6])],
        )
        red = semijoin_reduction(small, big, key_bytes=10.0)
        # 2 distinct keys broadcast to 1 other node at 10 B each.
        assert red.key_broadcast_bytes == pytest.approx(20.0)

    def test_worthwhile_flag(self):
        small = DistributedRelation(shards=[np.array([1])] * 2)
        # A big relation where nothing matches: everything is filtered.
        big = DistributedRelation(
            shards=[np.full(1000, 9)] * 2, payload_bytes=1000.0
        )
        red = semijoin_reduction(small, big)
        assert red.worthwhile
        assert red.reduced.total_tuples == 0

    def test_not_worthwhile_when_everything_matches(self):
        small = DistributedRelation(
            shards=[np.arange(100), np.arange(100, 200)]
        )
        big = DistributedRelation(
            shards=[np.arange(200), np.array([], np.int64)],
            payload_bytes=10.0,
        )
        red = semijoin_reduction(small, big)
        assert not red.worthwhile
        assert red.bytes_saved == 0.0

    def test_reduction_preserves_join_result(self):
        rng = np.random.default_rng(5)
        small = DistributedRelation(
            shards=[rng.integers(0, 30, 40) for _ in range(3)]
        )
        big = DistributedRelation(
            shards=[rng.integers(0, 90, 200) for _ in range(3)]
        )
        from repro.join.local import join_cardinality

        before = join_cardinality(small.all_keys(), big.all_keys())
        red = semijoin_reduction(small, big)
        after = join_cardinality(small.all_keys(), red.reduced.all_keys())
        assert before == after

    def test_validation(self):
        a = DistributedRelation(shards=[np.array([1])])
        b = DistributedRelation(shards=[np.array([1]), np.array([2])])
        with pytest.raises(ValueError, match="same nodes"):
            semijoin_reduction(a, b)
        with pytest.raises(ValueError, match="key_bytes"):
            semijoin_reduction(a, a, key_bytes=0.0)
