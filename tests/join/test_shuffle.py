"""Unit and integration tests for shuffle execution."""

import numpy as np
import pytest

from repro.core.model import ShuffleModel
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.shuffle import execute_shuffle


@pytest.fixture
def relation(rng):
    shards = [rng.integers(0, 40, size=rng.integers(5, 30)) for _ in range(4)]
    return DistributedRelation(shards=shards, payload_bytes=8.0)


class TestBasicShuffle:
    def test_tuples_conserved(self, relation, rng):
        part = HashPartitioner(p=10)
        dest = rng.integers(0, 4, size=10)
        out = execute_shuffle(relation, part, dest)
        assert out.relation.total_tuples == relation.total_tuples
        assert sorted(out.relation.all_keys().tolist()) == sorted(
            relation.all_keys().tolist()
        )

    def test_colocation(self, relation, rng):
        part = HashPartitioner(p=10)
        dest = rng.integers(0, 4, size=10)
        out = execute_shuffle(relation, part, dest)
        for node, shard in enumerate(out.relation.shards):
            if shard.size:
                assert (dest[part.partition_of(shard)] == node).all()

    def test_volume_matrix_matches_model_prediction(self, relation, rng):
        part = HashPartitioner(p=10)
        dest = rng.integers(0, 4, size=10)
        model = ShuffleModel(h=part.chunk_matrix(relation), rate=1.0)
        predicted = model.volume_matrix(dest)
        out = execute_shuffle(relation, part, dest)
        np.testing.assert_allclose(out.volume_matrix, predicted)

    def test_traffic_matches_model(self, relation, rng):
        part = HashPartitioner(p=10)
        dest = rng.integers(0, 4, size=10)
        model = ShuffleModel(h=part.chunk_matrix(relation), rate=1.0)
        out = execute_shuffle(relation, part, dest)
        assert out.traffic == pytest.approx(model.evaluate(dest).traffic)

    def test_identity_shuffle_when_everything_local(self):
        # One node: every destination is local; zero traffic.
        rel = DistributedRelation(shards=[np.arange(10)])
        part = HashPartitioner(p=5)
        out = execute_shuffle(rel, part, np.zeros(5, dtype=np.int64))
        assert out.traffic == 0.0


class TestBroadcast:
    def test_broadcast_key_replicated_everywhere(self):
        rel = DistributedRelation(
            shards=[np.array([1, 2]), np.array([3]), np.array([], dtype=np.int64)],
            payload_bytes=1.0,
        )
        part = HashPartitioner(p=4)
        dest = np.zeros(4, dtype=np.int64)
        out = execute_shuffle(rel, part, dest, broadcast_keys=np.array([1]))
        for shard in out.relation.shards:
            assert 1 in shard.tolist()

    def test_broadcast_volume_charged_n_minus_1(self):
        rel = DistributedRelation(
            shards=[np.array([1]), np.array([], dtype=np.int64),
                    np.array([], dtype=np.int64)],
            payload_bytes=2.0,
        )
        part = HashPartitioner(p=2)
        out = execute_shuffle(
            rel, part, np.zeros(2, dtype=np.int64), broadcast_keys=np.array([1])
        )
        assert out.traffic == pytest.approx(2.0 * 2)  # two remote copies

    def test_non_broadcast_keys_still_routed(self):
        rel = DistributedRelation(
            shards=[np.array([1, 2]), np.array([], dtype=np.int64)],
            payload_bytes=1.0,
        )
        part = HashPartitioner(p=2)
        dest = np.array([1, 1], dtype=np.int64)
        out = execute_shuffle(rel, part, dest, broadcast_keys=np.array([1]))
        # Key 2 routed to node 1; key 1 broadcast to both.
        assert sorted(out.relation.shards[1].tolist()) == [1, 2]
        assert out.relation.shards[0].tolist() == [1]


class TestValidation:
    def test_wrong_dest_length(self, relation):
        with pytest.raises(ValueError, match="shape"):
            execute_shuffle(relation, HashPartitioner(p=5),
                            np.zeros(4, dtype=np.int64))

    def test_dest_out_of_range(self, relation):
        with pytest.raises(ValueError, match="outside"):
            execute_shuffle(relation, HashPartitioner(p=5),
                            np.full(5, 99, dtype=np.int64))
