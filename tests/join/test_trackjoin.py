"""Tests for the per-key track-join scheduler."""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.trackjoin import TrackJoin
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


def two_relations(seed=0, n_nodes=4, keys=25, left_n=60, right_n=120):
    rng = np.random.default_rng(seed)
    left = DistributedRelation.from_placement(
        rng.integers(0, keys, left_n), rng.integers(0, n_nodes, left_n),
        n_nodes, payload_bytes=10.0,
    )
    right = DistributedRelation.from_placement(
        rng.integers(0, keys, right_n), rng.integers(0, n_nodes, right_n),
        n_nodes, payload_bytes=10.0,
    )
    return left, right


class TestDecisions:
    def test_every_present_key_decided(self):
        left, right = two_relations()
        tj = TrackJoin(left, right, rate=1.0)
        decisions = tj.decide()
        all_keys = set(left.all_keys().tolist()) | set(right.all_keys().tolist())
        assert set(decisions) == all_keys

    def test_one_sided_keys_cost_nothing(self):
        left = DistributedRelation(shards=[np.array([1]), np.array([], np.int64)])
        right = DistributedRelation(shards=[np.array([], np.int64), np.array([2])])
        tj = TrackJoin(left, right, rate=1.0)
        for dec in tj.decide().values():
            assert dec.cost_bytes == 0.0

    def test_broadcast_chosen_for_tiny_spread_side(self):
        # One left tuple, right tuples on every node: replicating left
        # (cost ~ n-1 tuples) beats migrating right (cost ~ n-1 tuples of
        # the bigger side) and single-dest.
        n = 5
        left = DistributedRelation(
            shards=[np.array([7])] + [np.array([], np.int64)] * (n - 1),
            payload_bytes=10.0,
        )
        right = DistributedRelation(
            shards=[np.array([7, 7, 7]) for _ in range(n)], payload_bytes=10.0
        )
        tj = TrackJoin(left, right, rate=1.0)
        dec = tj.decide()[7]
        assert dec.mode == "r_to_s"

    def test_single_dest_chosen_when_concentrated(self):
        left = DistributedRelation(
            shards=[np.array([3] * 10), np.array([3])], payload_bytes=10.0
        )
        right = DistributedRelation(
            shards=[np.array([3] * 10), np.array([3])], payload_bytes=10.0
        )
        dec = TrackJoin(left, right, rate=1.0).decide()[3]
        assert dec.mode == "dest" and dec.dest_node == 0

    def test_node_mismatch_rejected(self):
        a = DistributedRelation(shards=[np.array([1])])
        b = DistributedRelation(shards=[np.array([1]), np.array([2])])
        with pytest.raises(ValueError, match="same nodes"):
            TrackJoin(a, b)


class TestSchedule:
    def test_cardinality_matches_ground_truth(self):
        left, right = two_relations(seed=3)
        tj = TrackJoin(left, right, rate=1.0)
        result = tj.schedule()
        assert result.cardinality == tj.expected_cardinality()

    def test_traffic_not_above_mini(self):
        # Track join's per-key 'dest' option subsumes Mini's per-partition
        # choice (with p >= #keys), so its traffic can't be worse.
        cfg = TPCHConfig(n_nodes=5, scale_factor=0.003, skew=0.2, seed=9)
        customer, orders = generate_tpch_relations(cfg)
        tj = TrackJoin(customer, orders, rate=1.0).schedule()

        join = DistributedJoin(
            customer, orders,
            partitioner=HashPartitioner(p=75), skew_factor=50.0,
        )
        mini_plan = CCF(skew_handling=False).plan(join, "mini")
        assert tj.traffic <= mini_plan.traffic + 1e-6

    def test_ccf_still_beats_trackjoin_on_cct(self):
        # The paper's thesis at key granularity: minimal traffic is not
        # minimal time.  Heavy keys whose largest chunk always sits on
        # node 0 make track join's per-key 'dest' decisions flood node 0;
        # CCF at the same granularity (one partition per key) spreads.
        rng = np.random.default_rng(11)
        n_nodes, n_keys = 5, 20
        zipf_w = np.array([0.4, 0.25, 0.15, 0.12, 0.08])

        def heavy_relation(tuples_per_key):
            keys, nodes = [], []
            for k in range(n_keys):
                m = tuples_per_key
                keys.append(np.full(m, k))
                nodes.append(rng.choice(n_nodes, size=m, p=zipf_w))
            return DistributedRelation.from_placement(
                np.concatenate(keys), np.concatenate(nodes), n_nodes,
                payload_bytes=10.0,
            )

        left = heavy_relation(40)
        right = heavy_relation(200)
        tj = TrackJoin(left, right, rate=1.0).schedule()

        join = DistributedJoin(
            left, right, partitioner=HashPartitioner(p=n_keys),
            skew_factor=1e9,  # no key is 'skewed': pure co-optimization
        )
        ccf_plan = CCF(skew_handling=False).plan(join, "ccf")
        assert ccf_plan.bottleneck_bytes < tj.cct  # rate = 1 on both sides
        # ... while track join still moves fewer bytes, as designed.
        assert tj.traffic <= ccf_plan.traffic + 1e-6

    def test_volume_matrix_consistent_with_traffic(self):
        left, right = two_relations(seed=1)
        result = TrackJoin(left, right, rate=1.0).schedule()
        assert result.traffic == pytest.approx(result.volume_matrix.sum())
        assert np.trace(result.volume_matrix) == 0.0

    def test_coflow_export(self):
        left, right = two_relations(seed=2)
        tj = TrackJoin(left, right, rate=1.0)
        cf = tj.to_coflow()
        assert cf.total_volume == pytest.approx(tj.schedule().traffic)
        assert cf.name == "track-join"

    def test_cct_is_bottleneck_over_rate(self):
        left, right = two_relations(seed=4)
        fast = TrackJoin(left, right, rate=2.0).schedule()
        slow = TrackJoin(left, right, rate=1.0).schedule()
        assert fast.cct == pytest.approx(slow.cct / 2)
