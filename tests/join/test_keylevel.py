"""Tests for per-key (track-join-granularity) model refinement."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.join.keylevel import refine_model
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations


@pytest.fixture
def relations():
    rng = np.random.default_rng(6)
    shards = [rng.integers(0, 60, size=80) for _ in range(4)]
    return [DistributedRelation(shards=shards_, payload_bytes=2.0)
            for shards_ in (shards, [rng.integers(0, 60, 40) for _ in range(4)])]


class TestRefineModel:
    def test_bytes_conserved(self, relations):
        part = HashPartitioner(p=12)
        ref = refine_model(relations, part, split_fraction=0.25)
        total = sum(r.total_bytes for r in relations)
        assert ref.model.h.sum() == pytest.approx(total)

    def test_no_split_recovers_partition_model(self, relations):
        part = HashPartitioner(p=12)
        ref = refine_model(relations, part, split_fraction=0.0, min_split=0)
        h = np.zeros((4, 12))
        for rel in relations:
            h += part.chunk_matrix(rel)
        np.testing.assert_allclose(ref.model.h, h)
        assert (ref.column_key == -1).all()

    def test_split_columns_belong_to_split_partitions(self, relations):
        part = HashPartitioner(p=12)
        ref = refine_model(relations, part, split_fraction=0.25)
        split = set(ref.split_partitions.tolist())
        for col in range(ref.n_columns):
            if ref.column_key[col] >= 0:
                assert int(ref.column_partition[col]) in split
                # Key actually hashes into its recorded partition.
                assert ref.column_key[col] % 12 == ref.column_partition[col]

    def test_heaviest_partition_is_split(self, relations):
        part = HashPartitioner(p=12)
        h = np.zeros((4, 12))
        for rel in relations:
            h += part.chunk_matrix(rel)
        heaviest = int(h.sum(axis=0).argmax())
        ref = refine_model(relations, part, split_fraction=0.0, min_split=1)
        assert ref.split_partitions.tolist() == [heaviest]

    def test_refinement_never_hurts_bottleneck(self):
        # The refined assignment space contains every partition-level
        # assignment, so the heuristic on the refined model should match
        # or beat the partition-level heuristic on a skewed workload.
        cfg = TPCHConfig(n_nodes=5, scale_factor=0.005, skew=0.3, seed=4)
        customer, orders = generate_tpch_relations(cfg)
        part = HashPartitioner(p=20)
        from repro.core.model import ShuffleModel

        h = part.chunk_matrix(customer, orders)
        coarse = ShuffleModel(h=h, rate=1.0)
        t_coarse = coarse.evaluate(ccf_heuristic(coarse)).bottleneck_bytes

        ref = refine_model(
            [customer, orders], part, split_fraction=0.1, rate=1.0
        )
        t_fine = ref.model.evaluate(ccf_heuristic(ref.model)).bottleneck_bytes
        assert t_fine <= t_coarse + 1e-9
        # With a single hot key, per-key granularity must strictly win:
        # the hot partition's other keys can escape the hot destination.
        assert t_fine < t_coarse

    def test_key_destinations_mapping(self, relations):
        part = HashPartitioner(p=12)
        ref = refine_model(relations, part, split_fraction=0.25)
        dest = np.zeros(ref.n_columns, dtype=np.int64)
        mapping = ref.key_destinations(dest)
        assert set(mapping.values()) <= {0}
        assert len(mapping) == int((ref.column_key >= 0).sum())

    def test_key_destinations_shape_check(self, relations):
        part = HashPartitioner(p=12)
        ref = refine_model(relations, part)
        with pytest.raises(ValueError, match="shape"):
            ref.key_destinations(np.zeros(3, dtype=np.int64))

    def test_validation(self, relations):
        part = HashPartitioner(p=12)
        with pytest.raises(ValueError, match="at least one"):
            refine_model([], part)
        with pytest.raises(ValueError, match="split_fraction"):
            refine_model(relations, part, split_fraction=1.5)
