"""Tests for the CLI tooling subcommands (trace-gen, gantt, report, verify)."""

import pytest

from repro.cli import main
from repro.network.io import load_coflows


class TestTraceGen:
    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "mix.json"
        assert main(
            ["trace-gen", str(out), "--ports", "8", "--coflows", "5"]
        ) == 0
        coflows = load_coflows(out)
        assert len(coflows) == 5
        assert "wrote 5 coflows" in capsys.readouterr().out

    def test_coflowsim_format_rejected_for_irregular_mix(self, tmp_path, capsys):
        # The synthetic mix has random (src, dst) pairs, not equal-split
        # mapper/reducer structure, so CoflowSim export must refuse
        # loudly rather than distort.
        out = tmp_path / "mix.txt"
        rc = main(
            ["trace-gen", str(out), "--format", "coflowsim",
             "--ports", "8", "--coflows", "10", "--seed", "1"]
        )
        assert rc == 1
        assert "cannot express" in capsys.readouterr().err

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        main(["trace-gen", str(a), "--coflows", "6", "--seed", "9"])
        main(["trace-gen", str(b), "--coflows", "6", "--seed", "9"])
        assert a.read_text() == b.read_text()


class TestGantt:
    def test_renders_chart(self, tmp_path, capsys):
        out = tmp_path / "mix.json"
        main(["trace-gen", str(out), "--ports", "6", "--coflows", "4"])
        assert main(["gantt", str(out), "--width", "30"]) == 0
        text = capsys.readouterr().out
        assert "makespan" in text
        assert "█" in text

    def test_scheduler_choice(self, tmp_path, capsys):
        out = tmp_path / "mix.json"
        main(["trace-gen", str(out), "--ports", "6", "--coflows", "3"])
        assert main(["gantt", str(out), "--scheduler", "fair"]) == 0
        assert "scheduler=fair" in capsys.readouterr().out

    def test_empty_file_fails(self, tmp_path, capsys):
        from repro.network.io import save_coflows

        out = tmp_path / "empty.json"
        save_coflows([], out)
        assert main(["gantt", str(out)]) == 1


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out = tmp_path / "r.md"
        assert main(
            ["report", "--out", str(out), "--experiments", "motivating"]
        ) == 0
        text = out.read_text()
        assert "# CCF experiment report" in text
        assert "motivating" in text

    def test_report_unknown_experiment(self, tmp_path, capsys):
        rc = main(
            ["report", "--out", str(tmp_path / "r.md"),
             "--experiments", "nope"]
        )
        assert rc == 2
        assert "unknown experiments" in capsys.readouterr().err
