"""Tests for the ``ccf`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--quick", "--scale-factor", "2.5", "--markdown"]
        )
        assert args.quick and args.scale_factor == 2.5 and args.markdown


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_motivating(self, capsys):
        assert main(["run", "motivating"]) == 0
        out = capsys.readouterr().out
        assert "SP2" in out and "CCF" in out

    def test_run_quick_sweep(self, capsys):
        assert main(["run", "fig7", "--quick", "--nodes", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "ccf_cct_s" in out

    def test_markdown_output(self, capsys):
        assert main(["run", "motivating", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("**")


class TestSimulateFailureInjection:
    @pytest.fixture()
    def plan_file(self, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(
            ["plan", "--nodes", "6", "--scale-factor", "0.2", "--out", path]
        ) == 0
        return path

    def test_fail_port_with_replan(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "0.05",
             "--recover-at", "5", "--fail-direction", "ingress",
             "--recovery", "replan"]
        ) == 0
        out = capsys.readouterr().out
        assert "failures:" in out and "reroutes" in out

    def test_abort_exits_nonzero_and_reports(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "0.05",
             "--recovery", "abort"]
        ) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "coflows aborted" in out

    def test_chaos_run(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--chaos-mtbf", "1", "--chaos-mttr", "1",
             "--chaos-seed", "2", "--recovery", "retry"]
        ) == 0
        assert "failures:" in capsys.readouterr().out

    def test_failure_needs_recovery_policy(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0"]
        ) == 2
        assert "--recovery" in capsys.readouterr().err

    def test_fail_port_and_chaos_exclusive(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--chaos-mtbf", "1",
             "--recovery", "retry"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_fail_port_out_of_range(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "99",
             "--recovery", "retry"]
        ) == 2
        assert "out of range" in capsys.readouterr().err

    def test_recover_before_failure_is_a_clean_error(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "2",
             "--recover-at", "1", "--recovery", "retry"]
        ) == 2
        assert "invalid failure schedule" in capsys.readouterr().err

    def test_bad_chaos_config_is_a_clean_error(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--chaos-mtbf", "-1",
             "--recovery", "retry"]
        ) == 2
        assert "invalid chaos configuration" in capsys.readouterr().err


class TestSimulateWatchdog:
    @pytest.fixture()
    def plan_file(self, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(
            ["plan", "--nodes", "6", "--scale-factor", "0.2", "--out", path]
        ) == 0
        return path

    def test_epoch_budget_breach_exits_3_with_crash_report(
        self, plan_file, tmp_path, capsys
    ):
        crash_dir = tmp_path / "crashes"
        assert main(
            ["simulate", plan_file, "--max-epochs", "1",
             "--crash-dir", str(crash_dir)]
        ) == 3
        err = capsys.readouterr().err
        assert "watchdog abort" in err and "max_epochs" in err
        reports = list(crash_dir.glob("crash-*.json"))
        assert len(reports) == 1
        import json

        doc = json.loads(reports[0].read_text())
        assert doc["error"]["type"] == "BudgetExceeded"
        assert doc["context"]["max_epochs"] == 1

    def test_healthy_run_writes_no_crash_report(
        self, plan_file, tmp_path, capsys
    ):
        crash_dir = tmp_path / "crashes"
        assert main(
            ["simulate", plan_file, "--crash-dir", str(crash_dir)]
        ) == 0
        assert not crash_dir.exists()


class TestSweepSupervision:
    def test_interrupt_exits_130_with_partial_summary(
        self, monkeypatch, capsys
    ):
        from repro.experiments import engine
        from repro.experiments.engine import SweepInterrupted

        def fake_run_sweep(spec, **kwargs):
            raise SweepInterrupted(3, 5)

        monkeypatch.setattr(engine, "run_sweep", fake_run_sweep)
        assert main(["sweep", "psweep", "--quick", "--no-cache"]) == 130
        err = capsys.readouterr().err
        assert "interrupted after 3/5 cells" in err

    def test_interrupt_with_cache_mentions_resume(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.experiments import engine
        from repro.experiments.engine import SweepInterrupted

        def fake_run_sweep(spec, **kwargs):
            raise SweepInterrupted(1, 5)

        monkeypatch.setattr(engine, "run_sweep", fake_run_sweep)
        assert main(
            ["sweep", "psweep", "--quick", "--cache-dir", str(tmp_path)]
        ) == 130
        assert "--resume" in capsys.readouterr().err

    def test_negative_retries_is_cli_misuse(self, capsys):
        assert main(
            ["sweep", "psweep", "--quick", "--retries", "-1"]
        ) == 2
        assert "--retries" in capsys.readouterr().err

    def test_zero_cell_timeout_is_cli_misuse(self, capsys):
        assert main(
            ["sweep", "psweep", "--quick", "--cell-timeout", "0"]
        ) == 2
        assert "--cell-timeout" in capsys.readouterr().err

    def test_retries_flag_passes_a_backoff_policy(
        self, monkeypatch, capsys
    ):
        from repro.core.resilience import Backoff
        from repro.experiments import engine

        seen = {}
        real = engine.run_sweep

        def spy(spec, **kwargs):
            seen.update(kwargs)
            return real(spec, **kwargs)

        monkeypatch.setattr(engine, "run_sweep", spy)
        assert main(
            ["sweep", "psweep", "--quick", "--no-cache",
             "--retries", "2", "--cell-timeout", "60"]
        ) == 0
        capsys.readouterr()
        assert isinstance(seen["retry"], Backoff)
        assert seen["retry"].max_attempts == 3
        assert seen["cell_timeout_s"] == 60.0


class TestSimulateStagePolicy:
    @pytest.fixture()
    def plan_file(self, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(
            ["plan", "--nodes", "6", "--scale-factor", "0.2", "--out", path]
        ) == 0
        return path

    def test_replan_completes(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "0.05",
             "--fail-direction", "ingress", "--stage-policy", "replan"]
        ) == 0
        out = capsys.readouterr().out
        assert "job completed" in out and "replanned" in out

    def test_fail_job_reports_failed_job(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "0.05",
             "--fail-direction", "ingress", "--stage-policy", "fail-job"]
        ) == 1
        assert "job FAILED" in capsys.readouterr().out

    def test_policy_without_failures_is_a_clean_error(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--stage-policy", "replan"]
        ) == 2
        assert "failure schedule" in capsys.readouterr().err

    def test_policy_and_recovery_exclusive(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0",
             "--stage-policy", "replan", "--recovery", "retry"]
        ) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_failures_need_some_recovery_mode(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--fail-port", "0"]
        ) == 2
        err = capsys.readouterr().err
        assert "--recovery" in err and "--stage-policy" in err

    def test_bad_noise_is_a_clean_error(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--estimate-noise", "-1"]
        ) == 2
        assert "invalid estimate noise" in capsys.readouterr().err

    def test_bad_censor_is_a_clean_error(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--censor", "1.5"]
        ) == 2
        assert "invalid estimate noise" in capsys.readouterr().err

    def test_scheduler_view_noise_runs(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--estimate-noise", "0.8",
             "--censor", "0.2", "--noise-seed", "4"]
        ) == 0
        assert "average CCT" in capsys.readouterr().out


class TestObservabilityCli:
    @pytest.fixture()
    def plan_file(self, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(
            ["plan", "--nodes", "6", "--scale-factor", "0.2", "--out", path]
        ) == 0
        return path

    @pytest.fixture()
    def trace_file(self, plan_file, tmp_path):
        path = str(tmp_path / "run.jsonl")
        assert main(["simulate", plan_file, "--trace", path]) == 0
        return path

    def test_timeline_flag(self, plan_file, capsys):
        assert main(["simulate", plan_file, "--timeline"]) == 0
        assert "epochs recorded" in capsys.readouterr().out

    def test_timeline_off_hint(self, plan_file, capsys):
        assert main(["simulate", plan_file]) == 0
        assert "pass --timeline" in capsys.readouterr().out

    def test_timeline_limit_reports_drops(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--timeline", "--timeline-limit", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "last 2 epochs recorded" in out
        assert "older epochs dropped" in out

    def test_generous_timeline_limit_is_silent(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--timeline",
             "--timeline-limit", "100000"]
        ) == 0
        out = capsys.readouterr().out
        assert "epochs recorded" in out
        assert "dropped" not in out

    def test_timeline_limit_requires_timeline(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--timeline-limit", "2"]
        ) == 2
        err = capsys.readouterr().err
        assert "--timeline-limit only applies with --timeline" in err

    def test_timeline_limit_must_be_positive(self, plan_file, capsys):
        assert main(
            ["simulate", plan_file, "--timeline", "--timeline-limit", "0"]
        ) == 2
        assert "must be positive" in capsys.readouterr().err

    @staticmethod
    def _drop_leading_epochs(trace_file, tmp_path, drop):
        from repro.obs import read_jsonl
        from repro.obs.exporters import write_jsonl

        header, events = read_jsonl(trace_file)
        kept, seen = [], 0
        for e in events:
            if e["kind"] == "epoch" and seen < drop:
                seen += 1
                continue
            kept.append(e)
        assert seen == drop
        path = str(tmp_path / "truncated.jsonl")
        write_jsonl(path, kept, header)
        return path

    def test_stats_warns_on_truncated_timeline(
        self, trace_file, tmp_path, capsys
    ):
        cut = self._drop_leading_epochs(trace_file, tmp_path, 2)
        assert main(["stats", cut]) == 0
        captured = capsys.readouterr()
        assert "truncated" in captured.err
        assert "retained window" in captured.err

    def test_stats_is_quiet_on_complete_timeline(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        assert "truncated" not in capsys.readouterr().err

    def test_report_marks_truncated_trace(
        self, trace_file, tmp_path, capsys
    ):
        cut = self._drop_leading_epochs(trace_file, tmp_path, 2)
        out = str(tmp_path / "report.md")
        assert main(
            ["report", "--from-trace", cut, "--out", out]
        ) == 0
        text = open(out).read()
        assert "timeline in this trace is truncated" in text

    def test_trace_jsonl_readable(self, trace_file):
        from repro.obs import read_jsonl

        header, events = read_jsonl(trace_file)
        assert header["package"] == "repro"
        assert header["scheduler"] == "sebf"
        kinds = {e["kind"] for e in events}
        assert {"run_start", "coflow_submit", "epoch", "run_end"} <= kinds

    def test_trace_chrome(self, plan_file, tmp_path, capsys):
        import json

        path = str(tmp_path / "run.trace.json")
        assert main(
            ["simulate", plan_file, "--trace", path,
             "--trace-format", "chrome"]
        ) == 0
        assert "(chrome)" in capsys.readouterr().out
        doc = json.loads(open(path).read())
        assert doc["traceEvents"]
        assert doc["metadata"]["package"] == "repro"

    def test_trace_prom(self, plan_file, tmp_path):
        path = str(tmp_path / "metrics.prom")
        assert main(
            ["simulate", plan_file, "--trace", path, "--trace-format", "prom"]
        ) == 0
        text = open(path).read()
        assert "# TYPE epochs_total counter" in text
        assert "cct_seconds_bucket" in text

    def test_trace_with_stage_policy(self, plan_file, tmp_path):
        from repro.obs import read_jsonl

        path = str(tmp_path / "stage.jsonl")
        assert main(
            ["simulate", plan_file, "--fail-port", "0", "--fail-at", "0.05",
             "--fail-direction", "ingress", "--stage-policy", "replan",
             "--trace", path]
        ) == 0
        _, events = read_jsonl(path)
        kinds = {e["kind"] for e in events}
        assert "stage_attempt" in kinds and "planner_phase" in kinds

    def test_stats_command(self, trace_file, capsys):
        assert main(["stats", trace_file]) == 0
        out = capsys.readouterr().out
        assert "CCT (s): p50=" in out
        assert "coflows:" in out
        assert "bottleneck attribution" in out

    def test_stats_json(self, trace_file, capsys):
        import json

        assert main(["stats", trace_file, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["coflows"]["completed"] >= 1
        assert summary["header"]["package"] == "repro"

    def test_stats_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_gantt_from_trace(self, trace_file, capsys):
        assert main(["gantt", "--from-trace", trace_file]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_gantt_needs_exactly_one_source(self, trace_file, capsys):
        assert main(["gantt"]) == 2
        assert "exactly one input" in capsys.readouterr().err
        assert main(
            ["gantt", "some.json", "--from-trace", trace_file]
        ) == 2

    def test_report_from_trace_only(self, trace_file, tmp_path, capsys):
        out_path = str(tmp_path / "report.md")
        assert main(
            ["report", "--from-trace", trace_file, "--out", out_path]
        ) == 0
        text = open(out_path).read()
        assert "## Trace summary:" in text
        assert "Reproducibility header" in text
        assert "## motivating" not in text  # no experiments ran

    def test_report_bad_trace(self, tmp_path, capsys):
        assert main(
            ["report", "--from-trace", str(tmp_path / "nope.jsonl"),
             "--out", str(tmp_path / "r.md")]
        ) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestExitCodeContract:
    """docs/architecture.md's exit-code table IS repro.cli.EXIT_CODES."""

    def parse_docs_table(self):
        import pathlib
        import re

        text = pathlib.Path("docs/architecture.md").read_text()
        section = text.split("## CLI exit codes", 1)[1]
        rows = {}
        for line in section.splitlines():
            m = re.match(r"\|\s*(\d+)\s*\|\s*(.+?)\s*\|\s*$", line)
            if m:
                rows[int(m.group(1))] = m.group(2)
        return rows

    def test_docs_table_matches_the_dict(self):
        from repro.cli import EXIT_CODES

        assert self.parse_docs_table() == EXIT_CODES

    def test_constant_values(self):
        from repro import cli

        assert cli.EXIT_OK == 0
        assert cli.EXIT_FAILURE == 1
        assert cli.EXIT_USAGE == 2
        assert cli.EXIT_WATCHDOG == 3
        assert cli.EXIT_SLO_BREACH == 4
        assert cli.EXIT_INTERRUPTED == 130
        assert set(cli.EXIT_CODES) == {0, 1, 2, 3, 4, 130}


class TestServeCli:
    def serve_args(self, *extra):
        return [
            "serve", "--ports", "12", "--arrivals", "40", "--seed", "7",
            "--load", "0.6", "--slo", "120", *extra,
        ]

    def test_parser_accepts_serve_flags(self):
        args = build_parser().parse_args(
            self.serve_args("--policy", "bounded-queue", "--watermark", "9")
        )
        assert args.policy == "bounded-queue" and args.watermark == 9.0

    def test_healthy_serve_exits_zero(self, capsys):
        assert main(self.serve_args("--json")) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["arrivals"] == 40
        assert payload["shed"] == 0
        assert payload["slo_ok"] is True

    def test_bad_policy_params_exit_usage(self, capsys):
        rc = main(self.serve_args("--policy", "bounded-queue",
                                  "--watermark", "-5"))
        assert rc == 2

    def test_capacity_load_rejects_rate(self, capsys):
        rc = main([
            "capacity", "load", "--budget", "60", "--rate", "1e6",
            "--arrivals", "20",
        ])
        assert rc == 2
