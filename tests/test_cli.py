"""Tests for the ``ccf`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--quick", "--scale-factor", "2.5", "--markdown"]
        )
        assert args.quick and args.scale_factor == 2.5 and args.markdown


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert sorted(out) == sorted(EXPERIMENTS)

    def test_run_motivating(self, capsys):
        assert main(["run", "motivating"]) == 0
        out = capsys.readouterr().out
        assert "SP2" in out and "CCF" in out

    def test_run_quick_sweep(self, capsys):
        assert main(["run", "fig7", "--quick", "--nodes", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "ccf_cct_s" in out

    def test_markdown_output(self, capsys):
        assert main(["run", "motivating", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("**")
