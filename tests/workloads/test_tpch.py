"""Unit tests for the tuple-level TPC-H-like generator."""

import numpy as np
import pytest

from repro.workloads.tpch import TPCHConfig, generate_tpch_relations, inject_skew


class TestInjectSkew:
    def test_exact_fraction_rekeyed(self):
        rng = np.random.default_rng(0)
        keys = np.arange(2, 1002)  # no key equals 1 initially
        out = inject_skew(keys, skew=0.2, skewed_key=1, rng=rng)
        assert (out == 1).sum() == 200

    def test_zero_skew_is_identity(self):
        rng = np.random.default_rng(0)
        keys = np.arange(100)
        out = inject_skew(keys, skew=0.0, skewed_key=1, rng=rng)
        np.testing.assert_array_equal(out, keys)

    def test_input_not_modified(self):
        rng = np.random.default_rng(0)
        keys = np.arange(2, 102)
        inject_skew(keys, skew=0.5, skewed_key=1, rng=rng)
        assert (keys == 1).sum() == 0

    def test_invalid_skew(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            inject_skew(np.arange(10), skew=1.0, skewed_key=1, rng=rng)


class TestConfig:
    def test_row_counts_follow_scale_factor(self):
        cfg = TPCHConfig(scale_factor=0.01)
        assert cfg.n_customers == 1500
        assert cfg.n_orders == 15_000

    def test_paper_scale(self):
        cfg = TPCHConfig(scale_factor=600)
        assert cfg.n_customers == 90_000_000
        assert cfg.n_orders == 900_000_000

    def test_validation(self):
        with pytest.raises(ValueError):
            TPCHConfig(n_nodes=0)
        with pytest.raises(ValueError):
            TPCHConfig(scale_factor=0)
        with pytest.raises(ValueError):
            TPCHConfig(skew=1.5)


class TestGeneration:
    @pytest.fixture(scope="class")
    def relations(self):
        cfg = TPCHConfig(n_nodes=6, scale_factor=0.01, skew=0.2, seed=1)
        return TPCHConfig(n_nodes=6, scale_factor=0.01, skew=0.2, seed=1), \
            generate_tpch_relations(cfg)

    def test_sizes(self, relations):
        cfg, (customer, orders) = relations
        assert customer.total_tuples == cfg.n_customers
        assert orders.total_tuples == cfg.n_orders

    def test_customer_keys_unique_and_dense(self, relations):
        _, (customer, _) = relations
        keys = np.sort(customer.all_keys())
        np.testing.assert_array_equal(keys, np.arange(1, keys.size + 1))

    def test_orders_keys_within_customer_domain(self, relations):
        cfg, (_, orders) = relations
        keys = orders.all_keys()
        assert keys.min() >= 1 and keys.max() <= cfg.n_customers

    def test_skewed_key_frequency(self, relations):
        cfg, (_, orders) = relations
        hot = (orders.all_keys() == cfg.skewed_key).sum()
        # ~20% injected plus ~uniform background.
        assert hot >= 0.2 * cfg.n_orders

    def test_zipf_placement_ranks_nodes(self, relations):
        _, (_, orders) = relations
        sizes = orders.shard_tuples()
        # Node 0 holds the most tuples; rough monotonicity on average.
        assert sizes[0] == sizes.max()

    def test_deterministic(self):
        cfg = TPCHConfig(n_nodes=3, scale_factor=0.002, seed=42)
        a_cust, a_ord = generate_tpch_relations(cfg)
        b_cust, b_ord = generate_tpch_relations(cfg)
        for a, b in zip(a_cust.shards + a_ord.shards, b_cust.shards + b_ord.shards):
            np.testing.assert_array_equal(a, b)
