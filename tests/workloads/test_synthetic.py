"""Tests for the synthetic workload generators and crossover experiment."""

import numpy as np
import pytest

from repro.core.heuristic import ccf_heuristic
from repro.core.localsearch import refine_assignment
from repro.core.strategies import hash_assignment, mini_assignment
from repro.experiments.crossover import run_broadcast_crossover
from repro.workloads.synthetic import (
    adversarial_greedy_instance,
    bimodal_workload,
    clustered_workload,
    lognormal_workload,
)


class TestGenerators:
    def test_lognormal_shape_and_determinism(self):
        a = lognormal_workload(6, 40, seed=3)
        b = lognormal_workload(6, 40, seed=3)
        assert a.h.shape == (6, 40)
        np.testing.assert_array_equal(a.h, b.h)
        assert (a.h >= 0).all()

    def test_lognormal_density(self):
        m = lognormal_workload(10, 200, density=0.2, seed=1)
        frac = (m.h > 0).mean()
        assert 0.1 < frac < 0.3

    def test_lognormal_density_validation(self):
        with pytest.raises(ValueError, match="density"):
            lognormal_workload(4, 8, density=0.0)

    def test_clustered_holder_count(self):
        m = clustered_workload(8, 30, holders_per_partition=3, seed=2)
        holders = (m.h > 0).sum(axis=0)
        assert (holders == 3).all()

    def test_clustered_validation(self):
        with pytest.raises(ValueError, match="holders"):
            clustered_workload(4, 8, holders_per_partition=5)

    def test_bimodal_has_two_modes(self):
        m = bimodal_workload(5, 400, huge_fraction=0.1, ratio=100, seed=4)
        sizes = m.h.sum(axis=0)
        assert sizes.max() / np.median(sizes) > 20

    def test_bimodal_validation(self):
        with pytest.raises(ValueError, match="huge_fraction"):
            bimodal_workload(4, 8, huge_fraction=2.0)
        with pytest.raises(ValueError, match="ratio"):
            bimodal_workload(4, 8, ratio=0.5)

    def test_adversarial_instance_property_holds(self):
        # The documented weakness must stay reproducible.
        m = adversarial_greedy_instance()
        t_greedy = m.evaluate(ccf_heuristic(m)).bottleneck_bytes
        t_best_baseline = min(
            m.evaluate(hash_assignment(m)).bottleneck_bytes,
            m.evaluate(mini_assignment(m)).bottleneck_bytes,
        )
        assert t_greedy > t_best_baseline
        # ... and local search repairs it.
        fixed = refine_assignment(m, ccf_heuristic(m))
        assert fixed.final_t <= t_best_baseline


class TestCrossoverExperiment:
    @pytest.fixture(scope="class")
    def table(self):
        return run_broadcast_crossover(nodes=(2, 4, 16, 24))

    def test_broadcast_wins_small_clusters(self, table):
        verdicts = dict(zip(table.column("nodes"), table.column("chooser")))
        assert verdicts[2] == "broadcast"
        assert verdicts[24] == "repartition"

    def test_broadcast_cost_grows_with_n(self, table):
        col = table.column("broadcast_ms")
        assert col == sorted(col)

    def test_verdict_matches_ccts(self, table):
        for b, r, v in zip(
            table.column("broadcast_ms"),
            table.column("repartition_ms"),
            table.column("chooser"),
        ):
            assert (v == "broadcast") == (b < r)
