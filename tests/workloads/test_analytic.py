"""Unit tests for the closed-form analytic workload."""

import numpy as np
import pytest

from repro.workloads.analytic import AnalyticJoinWorkload


class TestSizes:
    def test_paper_totals(self):
        wl = AnalyticJoinWorkload(n_nodes=500)
        assert wl.n_customer_tuples == 90e6
        assert wl.n_order_tuples == 900e6
        assert wl.total_bytes == pytest.approx(990e9)
        assert wl.partitions == 7500

    def test_chunk_matrix_conserves_bytes(self):
        wl = AnalyticJoinWorkload(n_nodes=20, scale_factor=1.0)
        assert wl.chunk_matrix().sum() == pytest.approx(wl.total_bytes)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticJoinWorkload(n_nodes=0)
        with pytest.raises(ValueError):
            AnalyticJoinWorkload(n_nodes=2, skew=1.0)
        with pytest.raises(ValueError):
            AnalyticJoinWorkload(n_nodes=2, scale_factor=0)
        with pytest.raises(ValueError):
            AnalyticJoinWorkload(n_nodes=2, partitions=0)


class TestStructure:
    def test_node_shares_follow_zipf_ranking(self):
        wl = AnalyticJoinWorkload(n_nodes=10, scale_factor=1.0, zipf_s=0.8)
        h = wl.chunk_matrix()
        rows = h.sum(axis=1)
        assert (np.diff(rows) < 0).all()

    def test_uniform_at_zipf_zero(self):
        wl = AnalyticJoinWorkload(n_nodes=4, scale_factor=1.0, zipf_s=0.0)
        h = wl.chunk_matrix()
        np.testing.assert_allclose(h.sum(axis=1), wl.total_bytes / 4)

    def test_skewed_partition_is_heaviest(self):
        wl = AnalyticJoinWorkload(n_nodes=8, scale_factor=1.0, skew=0.3)
        h = wl.chunk_matrix()
        sizes = h.sum(axis=0)
        assert sizes.argmax() == wl.skewed_partition
        extra = sizes[wl.skewed_partition] - np.median(sizes)
        assert extra == pytest.approx(0.3 * wl.order_bytes, rel=1e-6)

    def test_no_skew_means_uniform_partitions(self):
        wl = AnalyticJoinWorkload(n_nodes=8, scale_factor=1.0, skew=0.0)
        sizes = wl.chunk_matrix().sum(axis=0)
        np.testing.assert_allclose(sizes, sizes[0])


class TestSkewSplit:
    def test_split_is_consistent(self):
        wl = AnalyticJoinWorkload(n_nodes=6, scale_factor=1.0, skew=0.25)
        full = wl.chunk_matrix()
        local = wl.skew_local_matrix()
        bcast = wl.broadcast_matrix()
        assert (local + bcast <= full + 1e-6).all()
        assert local.sum() == pytest.approx(0.25 * wl.order_bytes)
        assert bcast.sum() == pytest.approx(
            wl.customer_bytes / wl.n_customer_tuples
        )

    def test_zero_skew_has_empty_split(self):
        wl = AnalyticJoinWorkload(n_nodes=6, scale_factor=1.0, skew=0.0)
        assert wl.skew_local_matrix().sum() == 0.0
        assert wl.broadcast_matrix().sum() == 0.0


class TestShuffleModel:
    def test_raw_model_keeps_everything(self):
        wl = AnalyticJoinWorkload(n_nodes=6, scale_factor=1.0, skew=0.2)
        m = wl.shuffle_model(skew_handling=False)
        assert m.h.sum() == pytest.approx(wl.total_bytes)
        assert m.v0.sum() == 0.0

    def test_skew_handled_model_reduces_shuffle_mass(self):
        wl = AnalyticJoinWorkload(n_nodes=6, scale_factor=1.0, skew=0.2)
        m = wl.shuffle_model(skew_handling=True)
        assert m.h.sum() < wl.total_bytes
        assert m.local_bytes_pre == pytest.approx(0.2 * wl.order_bytes)
        assert m.v0.sum() > 0.0

    def test_skew_handling_noop_without_skew(self):
        wl = AnalyticJoinWorkload(n_nodes=6, scale_factor=1.0, skew=0.0)
        m = wl.shuffle_model(skew_handling=True)
        assert m.h.sum() == pytest.approx(wl.total_bytes)

    def test_rate_propagates(self):
        wl = AnalyticJoinWorkload(n_nodes=4, scale_factor=0.1, rate=1e9)
        assert wl.shuffle_model(skew_handling=True).rate == 1e9
        assert wl.shuffle_model(skew_handling=False).rate == 1e9
