"""Distributed triangle counting, verified against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.workloads.graph import (
    GraphConfig,
    count_triangles_distributed,
    generate_edge_relation,
    generate_edges,
)


def nx_triangles(edges: np.ndarray) -> int:
    g = nx.Graph()
    g.add_edges_from(map(tuple, edges.tolist()))
    return sum(nx.triangles(g).values()) // 3


class TestGeneration:
    def test_edges_oriented(self):
        edges = generate_edges(GraphConfig(seed=1))
        assert (edges[:, 0] < edges[:, 1]).all()

    def test_edge_probability_controls_density(self):
        sparse = generate_edges(GraphConfig(edge_probability=0.02, seed=2))
        dense = generate_edges(GraphConfig(edge_probability=0.3, seed=2))
        assert dense.shape[0] > sparse.shape[0]

    def test_relation_holds_all_edges(self):
        cfg = GraphConfig(seed=3)
        edges = generate_edges(cfg)
        rel = generate_edge_relation(cfg)
        assert rel.total_tuples == edges.shape[0]
        assert set(rel.column_names) == {"src", "dst"}

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphConfig(n_vertices=1)
        with pytest.raises(ValueError):
            GraphConfig(edge_probability=0.0)


class TestTriangleCounting:
    @pytest.mark.parametrize("seed", [0, 7])
    @pytest.mark.parametrize("strategy", ["hash", "ccf"])
    def test_matches_networkx(self, seed, strategy):
        cfg = GraphConfig(
            n_nodes=4, n_vertices=50, edge_probability=0.12, seed=seed
        )
        rel = generate_edge_relation(cfg)
        result = count_triangles_distributed(rel, strategy=strategy)
        assert result.triangles == nx_triangles(generate_edges(cfg))

    def test_wedges_at_least_triangles(self):
        cfg = GraphConfig(n_nodes=3, n_vertices=40, edge_probability=0.15, seed=5)
        rel = generate_edge_relation(cfg)
        result = count_triangles_distributed(rel)
        assert result.wedges >= result.triangles

    def test_triangle_free_graph(self):
        # A path graph has no triangles.
        from repro.join.multikey import KeyedRelation

        src = np.arange(0, 10)
        dst = np.arange(1, 11)
        rel = KeyedRelation.from_rows(
            {"src": src, "dst": dst}, np.zeros(10, dtype=np.int64) , 2,
            payload_bytes=10.0,
        )
        result = count_triangles_distributed(rel)
        assert result.triangles == 0

    def test_ccf_not_slower_than_hash(self):
        cfg = GraphConfig(
            n_nodes=5, n_vertices=60, edge_probability=0.12, seed=9,
            zipf_s=1.0,
        )
        rel = generate_edge_relation(cfg)
        t = {
            s: count_triangles_distributed(
                rel, strategy=s
            ).total_communication_seconds
            for s in ("hash", "ccf")
        }
        assert t["ccf"] <= t["hash"] + 1e-9

    def test_stage_accounting(self):
        cfg = GraphConfig(n_nodes=3, n_vertices=40, seed=2)
        rel = generate_edge_relation(cfg)
        result = count_triangles_distributed(rel)
        assert len(result.stage_ccts) == 2
        assert len(result.stage_traffic) == 2
        assert result.total_communication_seconds == pytest.approx(
            sum(result.stage_ccts)
        )
