"""Tests for the Facebook-style synthetic coflow trace generator."""

import numpy as np
import pytest

from repro.workloads.coflowmix import (
    BIN_DEFINITIONS,
    CoflowMixConfig,
    generate_coflow_mix,
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoflowMixConfig(n_ports=1)
        with pytest.raises(ValueError):
            CoflowMixConfig(n_coflows=-1)
        with pytest.raises(ValueError):
            CoflowMixConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            CoflowMixConfig(deadline_fraction=2.0)

    def test_bin_probabilities_sum_to_one(self):
        assert sum(b[1] for b in BIN_DEFINITIONS) == pytest.approx(1.0)


class TestGeneration:
    @pytest.fixture(scope="class")
    def trace(self):
        cfg = CoflowMixConfig(n_ports=30, n_coflows=300, arrival_rate=2.0, seed=1)
        return cfg, generate_coflow_mix(cfg)

    def test_count_and_ids(self, trace):
        cfg, coflows = trace
        assert len(coflows) == cfg.n_coflows
        assert [c.coflow_id for c in coflows] == list(range(cfg.n_coflows))

    def test_arrivals_monotone(self, trace):
        _, coflows = trace
        arrivals = [c.arrival_time for c in coflows]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_mean_inter_arrival(self, trace):
        cfg, coflows = trace
        arrivals = np.array([c.arrival_time for c in coflows])
        gaps = np.diff(arrivals)
        assert gaps.mean() == pytest.approx(1.0 / cfg.arrival_rate, rel=0.3)

    def test_ports_in_range_and_no_self_flows(self, trace):
        cfg, coflows = trace
        for c in coflows:
            for f in c:
                assert 0 <= f.src < cfg.n_ports
                assert 0 <= f.dst < cfg.n_ports
                assert f.src != f.dst

    def test_bin_names_used(self, trace):
        _, coflows = trace
        names = {c.name for c in coflows}
        assert names <= {b[0] for b in BIN_DEFINITIONS}
        assert "short-narrow" in names  # the 60% bin cannot be absent

    def test_narrow_dominate_by_count_wide_by_bytes(self, trace):
        _, coflows = trace
        narrow = [c for c in coflows if "narrow" in c.name]
        wide = [c for c in coflows if "wide" in c.name]
        assert len(narrow) > len(wide)
        assert sum(c.total_volume for c in wide) > sum(
            c.total_volume for c in narrow
        )

    def test_deterministic(self):
        cfg = CoflowMixConfig(n_ports=10, n_coflows=20, seed=9)
        a = generate_coflow_mix(cfg)
        b = generate_coflow_mix(cfg)
        for ca, cb in zip(a, b):
            assert ca.arrival_time == cb.arrival_time
            assert ca.total_volume == cb.total_volume

    def test_deadlines_attached_with_positive_slack(self):
        cfg = CoflowMixConfig(
            n_ports=10, n_coflows=50, seed=2, deadline_fraction=0.5
        )
        coflows = generate_coflow_mix(cfg, rate_for_deadlines=1e6)
        tagged = [c for c in coflows if c.deadline is not None]
        assert 5 < len(tagged) < 45
        for c in tagged:
            iso = c.bottleneck(cfg.n_ports, 1e6)
            assert c.deadline >= iso * 1.5 - 1e-9

    def test_runs_through_simulator(self, trace):
        from repro.network.fabric import Fabric
        from repro.network.schedulers import make_scheduler
        from repro.network.simulator import CoflowSimulator

        cfg, coflows = trace
        sub = coflows[:40]
        fab = Fabric(n_ports=cfg.n_ports, rate=128e6)
        res = CoflowSimulator(fab, make_scheduler("sebf")).run(sub)
        assert len(res.ccts) == len(sub)
