"""Cross-validation: the analytic generator matches the tuple-level one.

The paper-scale experiments rely on the closed-form chunk matrices; this
module proves they are the expectation of what the tuple-level generator
actually produces, for matched parameters.
"""

import numpy as np
import pytest

from repro.core.framework import CCF
from repro.join.operators import DistributedJoin
from repro.join.partitioner import HashPartitioner
from repro.workloads.analytic import AnalyticJoinWorkload
from repro.workloads.tpch import TPCHConfig, generate_tpch_relations

N_NODES = 6
SF = 0.05  # 7.5k customers, 75k orders: enough statistics, fast enough
ZIPF = 0.8
SKEW = 0.2
PARTITIONS = 30  # few partitions -> many tuples per chunk -> tight stats


@pytest.fixture(scope="module")
def pair():
    cfg = TPCHConfig(
        n_nodes=N_NODES, scale_factor=SF, zipf_s=ZIPF, skew=SKEW, seed=11
    )
    customer, orders = generate_tpch_relations(cfg)
    join = DistributedJoin(
        customer, orders, partitioner=HashPartitioner(PARTITIONS), skew_factor=50.0
    )
    analytic = AnalyticJoinWorkload(
        n_nodes=N_NODES,
        partitions=PARTITIONS,
        scale_factor=SF,
        zipf_s=ZIPF,
        skew=SKEW,
    )
    return join, analytic


class TestChunkMatrixAgreement:
    def test_full_matrix_within_5_percent(self, pair):
        join, analytic = pair
        h_tuple = join.chunk_matrix()
        h_model = analytic.chunk_matrix()
        assert h_tuple.sum() == pytest.approx(h_model.sum())
        # Per-chunk tuple counts are ~Binomial; allow 8% relative error
        # plus an absolute floor of ~4 standard deviations of the
        # smallest chunks (60 tuples worth of bytes).
        err = np.abs(h_tuple - h_model)
        tol = 0.08 * h_model + 60 * 1000.0
        assert (err <= tol).all()

    def test_node_shares_agree(self, pair):
        join, analytic = pair
        shares_tuple = join.chunk_matrix().sum(axis=1)
        shares_model = analytic.chunk_matrix().sum(axis=1)
        np.testing.assert_allclose(shares_tuple, shares_model, rtol=0.03)

    def test_skewed_partition_agrees(self, pair):
        join, analytic = pair
        k = analytic.skewed_partition
        tuple_sizes = join.chunk_matrix().sum(axis=0)
        model_sizes = analytic.chunk_matrix().sum(axis=0)
        assert tuple_sizes.argmax() == k
        assert tuple_sizes[k] == pytest.approx(model_sizes[k], rel=0.02)


class TestMetricAgreement:
    @pytest.mark.parametrize("strategy", ["hash", "mini", "ccf"])
    def test_traffic_and_cct_within_5_percent(self, pair, strategy):
        join, analytic = pair
        ccf = CCF()
        p_tuple = ccf.plan(join, strategy)
        p_model = ccf.plan(analytic, strategy)
        assert p_tuple.traffic == pytest.approx(p_model.traffic, rel=0.05)
        assert p_tuple.cct == pytest.approx(p_model.cct, rel=0.08)

    def test_speedup_ordering_agrees(self, pair):
        join, analytic = pair
        ccf = CCF()
        cmp_t = ccf.compare(join)
        cmp_m = ccf.compare(analytic)
        for cmp in (cmp_t, cmp_m):
            assert cmp.cct("ccf") <= cmp.cct("hash") <= cmp.cct("mini")
