"""Unit tests for zipfian placement weights."""

import numpy as np
import pytest

from repro.workloads.zipf import place_tuples, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        for s in (0.0, 0.5, 1.0, 2.0):
            assert zipf_weights(10, s).sum() == pytest.approx(1.0)

    def test_uniform_at_zero(self):
        np.testing.assert_allclose(zipf_weights(4, 0.0), 0.25)

    def test_monotone_decreasing(self):
        w = zipf_weights(20, 0.8)
        assert (np.diff(w) < 0).all()

    def test_classical_zipf_ratios(self):
        w = zipf_weights(3, 1.0)
        assert w[0] / w[1] == pytest.approx(2.0)
        assert w[0] / w[2] == pytest.approx(3.0)

    def test_single_node(self):
        np.testing.assert_allclose(zipf_weights(1, 0.8), [1.0])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 0.8)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestPlaceTuples:
    def test_counts_converge_to_weights(self):
        rng = np.random.default_rng(0)
        w = zipf_weights(5, 0.8)
        nodes = place_tuples(200_000, w, rng)
        freq = np.bincount(nodes, minlength=5) / 200_000
        np.testing.assert_allclose(freq, w, atol=0.01)

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert place_tuples(0, zipf_weights(3, 1.0), rng).size == 0

    def test_negative_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            place_tuples(-1, zipf_weights(3, 1.0), rng)

    def test_deterministic_given_seed(self):
        w = zipf_weights(4, 0.5)
        a = place_tuples(100, w, np.random.default_rng(7))
        b = place_tuples(100, w, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
