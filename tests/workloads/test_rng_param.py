"""Workload generators accept a spawned ``rng`` equivalent to ``seed``.

Service-mode and sweep seeding derive child generators via
``derive_seed``; every generator must treat ``rng=default_rng(k)``
exactly like ``seed=k`` so both entry points replay bit-for-bit.
"""

import numpy as np
import pytest

from repro.workloads.graph import (
    GraphConfig,
    generate_edge_relation,
    generate_edges,
)
from repro.workloads.synthetic import (
    bimodal_workload,
    clustered_workload,
    lognormal_workload,
)
from repro.workloads.tpch import (
    TPCHConfig,
    generate_tpch_keyed,
    generate_tpch_relations,
)

SEED = 11


class TestSynthetic:
    @pytest.mark.parametrize(
        "fn", [lognormal_workload, clustered_workload, bimodal_workload]
    )
    def test_rng_equals_seed(self, fn):
        by_seed = fn(4, 8, seed=SEED)
        by_rng = fn(4, 8, rng=np.random.default_rng(SEED))
        np.testing.assert_array_equal(by_seed.h, by_rng.h)

    def test_rng_overrides_seed(self):
        # An explicit generator wins; the seed argument is inert then.
        a = lognormal_workload(4, 8, seed=0, rng=np.random.default_rng(SEED))
        b = lognormal_workload(4, 8, seed=SEED)
        np.testing.assert_array_equal(a.h, b.h)


class TestTPCH:
    def test_relations_rng_equals_seed(self):
        cfg = TPCHConfig(n_nodes=4, scale_factor=0.0005, seed=SEED)
        cust_a, ord_a = generate_tpch_relations(cfg)
        cust_b, ord_b = generate_tpch_relations(
            cfg, rng=np.random.default_rng(SEED)
        )
        for rel_a, rel_b in [(cust_a, cust_b), (ord_a, ord_b)]:
            assert len(rel_a.shards) == len(rel_b.shards)
            for sa, sb in zip(rel_a.shards, rel_b.shards):
                np.testing.assert_array_equal(sa, sb)

    def test_keyed_rng_equals_seed(self):
        cfg = TPCHConfig(n_nodes=4, scale_factor=0.0005, seed=SEED)
        by_seed = generate_tpch_keyed(cfg)
        by_rng = generate_tpch_keyed(cfg, rng=np.random.default_rng(SEED))
        assert by_seed.keys() == by_rng.keys()
        for name in by_seed:
            a, b = by_seed[name], by_rng[name]
            assert a.columns.keys() == b.columns.keys()
            for col in a.columns:
                for sa, sb in zip(a.columns[col], b.columns[col]):
                    np.testing.assert_array_equal(sa, sb)


class TestGraph:
    def test_edges_rng_equals_seed(self):
        cfg = GraphConfig(seed=SEED)
        np.testing.assert_array_equal(
            generate_edges(cfg),
            generate_edges(cfg, rng=np.random.default_rng(SEED)),
        )

    def test_edge_relation_placement_stream(self):
        # The rng replaces placement only; its default is seed + 1 so the
        # placement draws decorrelate from the edge-structure draws.
        cfg = GraphConfig(seed=SEED)
        by_default = generate_edge_relation(cfg)
        by_rng = generate_edge_relation(
            cfg, rng=np.random.default_rng(SEED + 1)
        )
        for sa, sb in zip(
            by_default.columns["src"], by_rng.columns["src"]
        ):
            np.testing.assert_array_equal(sa, sb)
        # A different placement stream moves tuples but keeps the edges:
        # shard sizes change, the global (src, dst) multiset does not.
        other = generate_edge_relation(
            cfg, rng=np.random.default_rng(SEED + 2)
        )

        def edge_set(rel):
            src = np.concatenate(rel.columns["src"])
            dst = np.concatenate(rel.columns["dst"])
            return sorted(zip(src.tolist(), dst.tolist()))

        assert edge_set(other) == edge_set(by_default)
        sizes = [s.size for s in by_default.columns["src"]]
        other_sizes = [s.size for s in other.columns["src"]]
        assert sizes != other_sizes
