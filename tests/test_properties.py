"""Property-based tests (hypothesis) on the core invariants.

These pin the algebraic relationships that the whole reproduction leans
on: the vectorized model evaluation, the equivalence of the two
Algorithm 1 implementations, Mini's traffic optimality, the closed-form
CCT = simulator CCT identity, and conservation laws of the shuffle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.heuristic import ccf_heuristic, ccf_heuristic_reference
from repro.core.model import ShuffleModel, group_by_destination
from repro.core.strategies import hash_assignment, mini_assignment
from repro.join.partitioner import HashPartitioner
from repro.join.relation import DistributedRelation
from repro.join.shuffle import execute_shuffle
from repro.network.fabric import Fabric
from repro.network.flow import coflow_from_matrix
from repro.network.schedulers import make_scheduler
from repro.network.schedulers.base import maxmin_fill
from repro.network.simulator import CoflowSimulator
from repro.workloads.synthetic import adversarial_locality_instance
from repro.workloads.zipf import zipf_weights
from tests.conftest import brute_force_metrics


@st.composite
def chunk_matrices(draw, max_n=5, max_p=8):
    """Random integer chunk matrices (integers avoid float-tie ambiguity)."""
    n = draw(st.integers(2, max_n))
    p = draw(st.integers(1, max_p))
    h = draw(
        arrays(
            dtype=np.int64,
            shape=(n, p),
            elements=st.integers(0, 50),
        )
    )
    return h.astype(float)


@st.composite
def models_with_dest(draw):
    h = draw(chunk_matrices())
    n, p = h.shape
    dest = draw(
        arrays(dtype=np.int64, shape=(p,), elements=st.integers(0, n - 1))
    )
    return ShuffleModel(h=h, rate=1.0), dest


class TestModelInvariants:
    @given(models_with_dest())
    @settings(max_examples=60, deadline=None)
    def test_evaluate_matches_brute_force(self, case):
        model, dest = case
        got = model.evaluate(dest)
        traffic, send, recv, t = brute_force_metrics(model.h, dest)
        assert got.traffic == pytest.approx(traffic)
        np.testing.assert_allclose(got.send_loads, send)
        np.testing.assert_allclose(got.recv_loads, recv)
        assert got.bottleneck_bytes == pytest.approx(t)

    @given(models_with_dest())
    @settings(max_examples=60, deadline=None)
    def test_bottleneck_bounds_traffic(self, case):
        # T <= traffic <= n * T: some port carries at least traffic/n.
        model, dest = case
        m = model.evaluate(dest)
        assert m.bottleneck_bytes <= m.traffic + 1e-9
        assert m.traffic <= 2 * model.n * m.bottleneck_bytes + 1e-9

    @given(models_with_dest())
    @settings(max_examples=40, deadline=None)
    def test_group_by_destination_conserves_bytes(self, case):
        model, dest = case
        grouped = group_by_destination(model.h, dest)
        assert grouped.sum() == pytest.approx(model.h.sum())


class TestStrategyInvariants:
    @given(models_with_dest())
    @settings(max_examples=60, deadline=None)
    def test_mini_traffic_is_global_minimum(self, case):
        model, dest = case
        mini_traffic = model.evaluate(mini_assignment(model)).traffic
        assert model.evaluate(dest).traffic >= mini_traffic - 1e-9

    @given(chunk_matrices())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_implementations_agree(self, h):
        model = ShuffleModel(h=h, rate=1.0)
        np.testing.assert_array_equal(
            ccf_heuristic(model), ccf_heuristic_reference(model)
        )

    @given(chunk_matrices())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_within_band_of_baselines(self, h):
        # Algorithm 1 is a greedy and CAN lose to the baselines on
        # adversarial instances (hypothesis found T=19 vs 18 on a 3x4
        # matrix, and later T=8 vs Mini's 5 on the 2x5 matrix pinned
        # below), so dominance is not an invariant.  What must hold is
        # that it never degrades catastrophically: within 2x of the
        # better baseline on arbitrary integer instances (it wins on the
        # paper's workload class, asserted elsewhere).
        model = ShuffleModel(h=h, rate=1.0)
        t_ccf = model.evaluate(ccf_heuristic(model)).bottleneck_bytes
        t_hash = model.evaluate(hash_assignment(model)).bottleneck_bytes
        t_mini = model.evaluate(mini_assignment(model)).bottleneck_bytes
        assert t_ccf <= 2.0 * min(t_hash, t_mini) + 1e-9

    def test_heuristic_worst_known_adversarial_instance(self):
        # The worst band violation hypothesis has found so far, kept as
        # the named fixture `adversarial_locality_instance`: the
        # greedy's locality tie-break parks the early tied partitions
        # on their holder node "for free", leaving the symmetric final
        # partition nowhere cheap to go (T=8) where Mini reaches 5.
        # Pinned so the ratio is tracked deliberately rather than
        # rediscovered at random; docs/algorithms.md explains the trace.
        model = adversarial_locality_instance()
        t_ccf = model.evaluate(ccf_heuristic(model)).bottleneck_bytes
        t_mini = model.evaluate(mini_assignment(model)).bottleneck_bytes
        assert t_mini == 5.0
        assert t_ccf == 8.0  # 1.6x -- inside the 2x band asserted above

    @given(chunk_matrices())
    @settings(max_examples=40, deadline=None)
    def test_heuristic_respects_lower_bound(self, h):
        model = ShuffleModel(h=h, rate=1.0)
        t = model.evaluate(ccf_heuristic(model)).bottleneck_bytes
        assert t >= model.bottleneck_lower_bound() - 1e-9


class TestSimulatorInvariants:
    @given(models_with_dest())
    @settings(max_examples=25, deadline=None)
    def test_sebf_cct_equals_closed_form(self, case):
        model, dest = case
        metrics = model.evaluate(dest)
        cf = model.to_coflow(dest)
        if cf.width == 0:
            return
        fabric = Fabric(n_ports=model.n, rate=1.0)
        res = CoflowSimulator(fabric, make_scheduler("sebf")).run([cf])
        assert res.max_cct == pytest.approx(metrics.cct, rel=1e-9)

    @given(models_with_dest())
    @settings(max_examples=25, deadline=None)
    def test_fair_cct_at_least_closed_form(self, case):
        model, dest = case
        cf = model.to_coflow(dest)
        if cf.width == 0:
            return
        fabric = Fabric(n_ports=model.n, rate=1.0)
        res = CoflowSimulator(fabric, make_scheduler("fair")).run([cf])
        assert res.max_cct >= model.evaluate(dest).cct - 1e-9

    @given(
        st.integers(2, 6),
        st.integers(1, 12),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_maxmin_respects_capacities(self, n, m, seed):
        rng = np.random.default_rng(seed)
        srcs = rng.integers(0, n, m)
        dsts = (srcs + 1 + rng.integers(0, n - 1, m)) % n
        rates = maxmin_fill(srcs, dsts, np.ones(n), np.ones(n))
        out = np.bincount(srcs, weights=rates, minlength=n)
        inb = np.bincount(dsts, weights=rates, minlength=n)
        assert (out <= 1 + 1e-6).all()
        assert (inb <= 1 + 1e-6).all()
        # Work conservation: every flow has a saturated port.
        for f in range(m):
            assert out[srcs[f]] >= 1 - 1e-6 or inb[dsts[f]] >= 1 - 1e-6


class TestShuffleInvariants:
    @given(
        st.integers(2, 5),
        st.integers(1, 8),
        st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_shuffle_conserves_and_matches_model(self, n, p, seed):
        rng = np.random.default_rng(seed)
        shards = [rng.integers(0, 30, size=rng.integers(0, 20)) for _ in range(n)]
        rel = DistributedRelation(shards=shards, payload_bytes=4.0)
        part = HashPartitioner(p=p)
        dest = rng.integers(0, n, size=p)
        out = execute_shuffle(rel, part, dest)
        assert out.relation.total_tuples == rel.total_tuples
        model = ShuffleModel(h=part.chunk_matrix(rel), rate=1.0)
        np.testing.assert_allclose(out.volume_matrix, model.volume_matrix(dest))

    @given(st.integers(1, 40), st.floats(0.0, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_zipf_weights_normalized_and_monotone(self, n, s):
        w = zipf_weights(n, s)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) <= 1e-15).all()


class TestCoflowInvariants:
    @given(
        arrays(
            dtype=np.int64,
            shape=st.tuples(st.integers(2, 5), st.integers(2, 5)).filter(
                lambda t: t[0] == t[1]
            ),
            elements=st.integers(0, 20),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_coflow_from_matrix_roundtrip(self, vol):
        vol = vol.astype(float)
        cf = coflow_from_matrix(vol)
        off = vol.copy()
        np.fill_diagonal(off, 0.0)
        assert cf.total_volume == pytest.approx(off.sum())
        np.testing.assert_allclose(cf.volume_matrix(vol.shape[0]), off)
